(* Step-level tests of the commitment machines: exact action sequences
   for canonical input orders.  These pin the protocol definitions down
   more tightly than the schedule-randomizing sandbox. *)

open Rt_commit
open Protocol

let timeouts = default_timeouts

let action = Alcotest.testable pp_action (fun a b -> a = b)

(* --- 2PC coordinator (presumed abort) ----------------------------------- *)

let test_pra_coordinator_commit_walk () =
  let c =
    Two_pc.coordinator ~variant:Two_pc.Presumed_abort ~participants:[ 0; 1; 2 ]
      ~timeouts
  in
  (* Start: vote requests to everyone plus the collection timer. *)
  let c, actions = Two_pc.coord_step c Start in
  Alcotest.(check (list action)) "start actions"
    [ Send (0, Vote_req); Send (1, Vote_req); Send (2, Vote_req);
      Set_timer (T_votes, timeouts.vote_collect) ]
    actions;
  (* Two yes votes: nothing observable. *)
  let c, actions = Two_pc.coord_step c (Recv (0, Vote_yes)) in
  Alcotest.(check (list action)) "quiet while collecting" [] actions;
  let c, actions = Two_pc.coord_step c (Recv (1, Vote_yes)) in
  Alcotest.(check (list action)) "still quiet" [] actions;
  Alcotest.(check bool) "no decision yet" true (Two_pc.coord_decision c = None);
  (* Final yes: force the commit record. *)
  let c, actions = Two_pc.coord_step c (Recv (2, Vote_yes)) in
  Alcotest.(check (list action)) "commit logged"
    [ Clear_timer T_votes; Log (L_decision Commit, `Forced) ]
    actions;
  (* Durable: distribute, await acks. *)
  let c, actions = Two_pc.coord_step c (Log_done (L_decision Commit)) in
  Alcotest.(check (list action)) "distribution"
    [ Send (0, Decision_msg Commit); Send (1, Decision_msg Commit);
      Send (2, Decision_msg Commit);
      Set_timer (T_resend, timeouts.resend_every); Deliver Commit ]
    actions;
  (* Acks close the book with a lazy end record. *)
  let c, _ = Two_pc.coord_step c (Recv (0, Decision_ack)) in
  let c, _ = Two_pc.coord_step c (Recv (1, Decision_ack)) in
  let c, actions = Two_pc.coord_step c (Recv (2, Decision_ack)) in
  Alcotest.(check (list action)) "end record"
    [ Clear_timer T_resend; Log (L_end, `Lazy) ]
    actions;
  Alcotest.(check bool) "done" true (Two_pc.coord_done c)

let test_pra_coordinator_abort_is_lazy () =
  let c =
    Two_pc.coordinator ~variant:Two_pc.Presumed_abort ~participants:[ 0; 1 ]
      ~timeouts
  in
  let c, _ = Two_pc.coord_step c Start in
  let c, _ = Two_pc.coord_step c (Recv (0, Vote_yes)) in
  let c, actions = Two_pc.coord_step c (Recv (1, Vote_no)) in
  (* Presumed abort: lazy abort record, notify the yes-voter, no acks,
     immediate end. *)
  Alcotest.(check (list action)) "lazy abort"
    [ Clear_timer T_votes; Log (L_decision Abort, `Lazy);
      Send (0, Decision_msg Abort); Log (L_end, `Lazy); Deliver Abort ]
    actions;
  Alcotest.(check bool) "decision" true
    (Two_pc.coord_decision c = Some Abort)

let test_prn_coordinator_abort_is_forced_with_acks () =
  let c =
    Two_pc.coordinator ~variant:Two_pc.Presumed_nothing ~participants:[ 0; 1 ]
      ~timeouts
  in
  let c, _ = Two_pc.coord_step c Start in
  let c, _ = Two_pc.coord_step c (Recv (0, Vote_yes)) in
  let c, actions = Two_pc.coord_step c (Recv (1, Vote_no)) in
  Alcotest.(check (list action)) "forced abort"
    [ Clear_timer T_votes; Log (L_decision Abort, `Forced) ]
    actions;
  let _, actions = Two_pc.coord_step c (Log_done (L_decision Abort)) in
  Alcotest.(check (list action)) "abort distributed, acks expected"
    [ Send (0, Decision_msg Abort);
      Set_timer (T_resend, timeouts.resend_every); Deliver Abort ]
    actions

let test_prc_coordinator_forces_collecting_first () =
  let c =
    Two_pc.coordinator ~variant:Two_pc.Presumed_commit ~participants:[ 0 ]
      ~timeouts
  in
  let c, actions = Two_pc.coord_step c Start in
  Alcotest.(check (list action)) "collecting record first"
    [ Log (L_collecting, `Forced) ]
    actions;
  let _, actions = Two_pc.coord_step c (Log_done L_collecting) in
  Alcotest.(check (list action)) "then votes"
    [ Send (0, Vote_req); Set_timer (T_votes, timeouts.vote_collect) ]
    actions

(* --- 2PC participant ----------------------------------------------------- *)

let test_participant_yes_walk () =
  let p =
    Two_pc.participant ~variant:Two_pc.Presumed_abort ~self:1 ~coordinator:0
      ~peers:[ 0; 1; 2 ] ~vote:true ~timeouts ()
  in
  let p, actions = Two_pc.part_step p (Recv (0, Vote_req)) in
  Alcotest.(check (list action)) "prepared forced"
    [ Log (L_prepared, `Forced) ]
    actions;
  let p, actions = Two_pc.part_step p (Log_done L_prepared) in
  Alcotest.(check (list action)) "vote after durable"
    [ Send (0, Vote_yes); Set_timer (T_decision, timeouts.decision_wait) ]
    actions;
  Alcotest.(check bool) "uncertain" true (Two_pc.part_state p = P_uncertain);
  let p, actions = Two_pc.part_step p (Recv (0, Decision_msg Commit)) in
  Alcotest.(check (list action)) "commit forced"
    [ Clear_timer T_decision; Clear_timer T_resend;
      Log (L_decision Commit, `Forced) ]
    actions;
  let p, actions = Two_pc.part_step p (Log_done (L_decision Commit)) in
  Alcotest.(check (list action)) "ack + deliver"
    [ Send (0, Decision_ack); Deliver Commit ]
    actions;
  Alcotest.(check bool) "committed" true (Two_pc.part_state p = P_committed)

let test_participant_no_vote_aborts_unilaterally () =
  let p =
    Two_pc.participant ~variant:Two_pc.Presumed_abort ~self:1 ~coordinator:0
      ~peers:[ 0; 1 ] ~vote:false ~timeouts ()
  in
  let p, actions = Two_pc.part_step p (Recv (0, Vote_req)) in
  Alcotest.(check (list action)) "no + local abort"
    [ Send (0, Vote_no); Log (L_decision Abort, `Lazy); Deliver Abort ]
    actions;
  Alcotest.(check bool) "aborted" true (Two_pc.part_state p = P_aborted)

let test_participant_timeout_asks_around () =
  let p =
    Two_pc.participant ~variant:Two_pc.Presumed_abort ~self:1 ~coordinator:0
      ~peers:[ 0; 1; 2 ] ~vote:true ~timeouts ()
  in
  let p, _ = Two_pc.part_step p (Recv (0, Vote_req)) in
  let p, _ = Two_pc.part_step p (Log_done L_prepared) in
  let p, actions = Two_pc.part_step p (Timeout T_decision) in
  Alcotest.(check (list action)) "cooperative inquiry + blocked"
    [ Send (0, Decision_req); Send (2, Decision_req);
      Set_timer (T_resend, timeouts.resend_every); Blocked ]
    actions;
  Alcotest.(check bool) "blocked" true (Two_pc.part_blocked p);
  (* A peer that knows the answer resolves it. *)
  let p, actions = Two_pc.part_step p (Recv (2, Decision_msg Abort)) in
  Alcotest.(check (list action)) "abort is lazy under PrA"
    [ Clear_timer T_decision; Clear_timer T_resend;
      Log (L_decision Abort, `Lazy); Deliver Abort ]
    actions;
  Alcotest.(check bool) "resolved" true (Two_pc.part_state p = P_aborted)

let test_read_only_participant_forgets () =
  let p =
    Two_pc.participant ~read_only:true ~variant:Two_pc.Presumed_abort ~self:1
      ~coordinator:0 ~peers:[ 0; 1 ] ~vote:true ~timeouts ()
  in
  let p, actions = Two_pc.part_step p (Recv (0, Vote_req)) in
  Alcotest.(check (list action)) "read-only vote and forget"
    [ Send (0, Vote_read_only); Forget ]
    actions;
  (* It knows nothing afterwards. *)
  let _, actions = Two_pc.part_step p (Recv (2, Decision_req)) in
  Alcotest.(check (list action)) "answers unknown"
    [ Send (2, Decision_unknown) ]
    actions

(* --- 2PC recovery entry points ------------------------------------------- *)

let test_recovered_coordinator_redistributes () =
  (* PrN and PrA both require commit acks: a coordinator that logged
     Commit and crashed must re-distribute until everyone acknowledges. *)
  List.iter
    (fun variant ->
      let name = Two_pc.variant_name variant in
      let c =
        Two_pc.coordinator_recovered ~variant ~participants:[ 0; 1 ] ~timeouts
          ~logged:(`Decision Commit)
      in
      Alcotest.(check bool) (name ^ ": not done yet") false (Two_pc.coord_done c);
      let c, actions = Two_pc.coord_step c Start in
      Alcotest.(check (list action)) (name ^ ": redistribute on start")
        [ Send (0, Decision_msg Commit); Send (1, Decision_msg Commit);
          Set_timer (T_resend, timeouts.resend_every) ]
        actions;
      let c, _ = Two_pc.coord_step c (Recv (0, Decision_ack)) in
      let c, actions = Two_pc.coord_step c (Recv (1, Decision_ack)) in
      Alcotest.(check (list action)) (name ^ ": end after all acks")
        [ Clear_timer T_resend; Log (L_end, `Lazy) ]
        actions;
      Alcotest.(check bool) (name ^ ": done") true (Two_pc.coord_done c))
    [ Two_pc.Presumed_nothing; Two_pc.Presumed_abort ]

let test_recovered_prc_commit_needs_nothing () =
  (* Presumed commit: a logged Commit needs no acks — the machine comes
     back finished and only answers inquiries. *)
  let c =
    Two_pc.coordinator_recovered ~variant:Two_pc.Presumed_commit
      ~participants:[ 0; 1 ] ~timeouts ~logged:(`Decision Commit)
  in
  Alcotest.(check bool) "done immediately" true (Two_pc.coord_done c);
  let c, actions = Two_pc.coord_step c Start in
  Alcotest.(check (list action)) "start is a no-op" [] actions;
  let _, actions = Two_pc.coord_step c (Recv (1, Decision_req)) in
  Alcotest.(check (list action)) "answers inquiries"
    [ Send (1, Decision_msg Commit) ]
    actions

let test_recovered_prc_collecting_aborts () =
  (* Presumed commit crashed between the Collecting record and the
     decision: it must abort, force the record, and collect abort acks. *)
  let c =
    Two_pc.coordinator_recovered ~variant:Two_pc.Presumed_commit
      ~participants:[ 0; 1 ] ~timeouts ~logged:`Collecting
  in
  let c, actions = Two_pc.coord_step c Start in
  Alcotest.(check (list action)) "re-force the abort record"
    [ Log (L_decision Abort, `Forced) ]
    actions;
  (* Undecided until durable: inquiries get no answer yet. *)
  let c, actions = Two_pc.coord_step c (Recv (1, Decision_req)) in
  Alcotest.(check (list action)) "undecided while logging"
    [ Send (1, Decision_unknown) ]
    actions;
  let c, actions = Two_pc.coord_step c (Log_done (L_decision Abort)) in
  Alcotest.(check (list action)) "distribute abort, await acks"
    [ Send (0, Decision_msg Abort); Send (1, Decision_msg Abort);
      Set_timer (T_resend, timeouts.resend_every); Deliver Abort ]
    actions;
  Alcotest.(check bool) "decided abort" true
    (Two_pc.coord_decision c = Some Abort)

let test_recovered_coordinator_presumes () =
  (* No log record at all: the machine comes back finished and answers
     inquiries with the variant's presumption. *)
  List.iter
    (fun (variant, presumed) ->
      let name = Two_pc.variant_name variant in
      let c =
        Two_pc.coordinator_recovered ~variant ~participants:[ 0; 1 ] ~timeouts
          ~logged:`Nothing
      in
      Alcotest.(check bool) (name ^ ": done") true (Two_pc.coord_done c);
      let c, actions = Two_pc.coord_step c Start in
      Alcotest.(check (list action)) (name ^ ": start is a no-op") [] actions;
      let _, actions = Two_pc.coord_step c (Recv (1, Decision_req)) in
      Alcotest.(check (list action)) (name ^ ": presumption answer")
        [ Send (1, Decision_msg presumed) ]
        actions)
    [
      (Two_pc.Presumed_nothing, Abort);
      (Two_pc.Presumed_abort, Abort);
      (Two_pc.Presumed_commit, Commit);
    ]

let test_recovered_participant_asks_around () =
  (* A prepared-but-undecided participant wakes up in the uncertain
     window and immediately runs cooperative termination. *)
  let p =
    Two_pc.participant_recovered ~variant:Two_pc.Presumed_abort ~self:1
      ~coordinator:0 ~peers:[ 0; 1; 2 ] ~timeouts
  in
  Alcotest.(check bool) "uncertain" true (Two_pc.part_state p = P_uncertain);
  let p, actions = Two_pc.part_step p Start in
  Alcotest.(check (list action)) "asks coordinator and peers"
    [ Send (0, Decision_req); Send (2, Decision_req);
      Set_timer (T_resend, timeouts.resend_every) ]
    actions;
  (* Commit under PrA is forced and acknowledged. *)
  let p, actions = Two_pc.part_step p (Recv (0, Decision_msg Commit)) in
  Alcotest.(check (list action)) "commit forced"
    [ Clear_timer T_decision; Clear_timer T_resend;
      Log (L_decision Commit, `Forced) ]
    actions;
  let p, actions = Two_pc.part_step p (Log_done (L_decision Commit)) in
  Alcotest.(check (list action)) "ack + deliver"
    [ Send (0, Decision_ack); Deliver Commit ]
    actions;
  Alcotest.(check bool) "committed" true (Two_pc.part_state p = P_committed)

let test_recovered_participant_outcomes_by_variant () =
  (* The recovered machine still honours each variant's forcing and ack
     discipline when the answer finally arrives. *)
  let recovered variant =
    let p =
      Two_pc.participant_recovered ~variant ~self:1 ~coordinator:0
        ~peers:[ 0; 1; 2 ] ~timeouts
    in
    fst (Two_pc.part_step p Start)
  in
  (* PrA abort: lazy, no ack. *)
  let p, actions =
    Two_pc.part_step (recovered Two_pc.Presumed_abort)
      (Recv (2, Decision_msg Abort))
  in
  Alcotest.(check (list action)) "PrA abort lazy, unacknowledged"
    [ Clear_timer T_decision; Clear_timer T_resend;
      Log (L_decision Abort, `Lazy); Deliver Abort ]
    actions;
  Alcotest.(check bool) "aborted" true (Two_pc.part_state p = P_aborted);
  (* PrC commit: lazy, no ack. *)
  let _, actions =
    Two_pc.part_step (recovered Two_pc.Presumed_commit)
      (Recv (0, Decision_msg Commit))
  in
  Alcotest.(check (list action)) "PrC commit lazy, unacknowledged"
    [ Clear_timer T_decision; Clear_timer T_resend;
      Log (L_decision Commit, `Lazy); Deliver Commit ]
    actions;
  (* PrN abort: forced, acknowledged. *)
  let p, actions =
    Two_pc.part_step (recovered Two_pc.Presumed_nothing)
      (Recv (0, Decision_msg Abort))
  in
  Alcotest.(check (list action)) "PrN abort forced"
    [ Clear_timer T_decision; Clear_timer T_resend;
      Log (L_decision Abort, `Forced) ]
    actions;
  let _, actions = Two_pc.part_step p (Log_done (L_decision Abort)) in
  Alcotest.(check (list action)) "PrN abort acknowledged"
    [ Send (0, Decision_ack); Deliver Abort ]
    actions

(* --- regressions from the crash-point sweep ------------------------------- *)

let test_idle_participant_adopts_decision () =
  (* Regression: a recovered coordinator redistributes its decision to
     every participant, including one whose vote request died with the
     coordinator and is still idle.  The idle participant used to drop
     the message, leaving the coordinator resending forever. *)
  let p =
    Two_pc.participant ~variant:Two_pc.Presumed_nothing ~self:1 ~coordinator:0
      ~peers:[ 0; 1; 2 ] ~vote:true ~timeouts ()
  in
  let p, actions = Two_pc.part_step p (Recv (0, Decision_msg Abort)) in
  Alcotest.(check (list action)) "adopts the coordinator's abort"
    [ Clear_timer T_decision; Clear_timer T_resend;
      Log (L_decision Abort, `Forced) ]
    actions;
  let _, actions = Two_pc.part_step p (Log_done (L_decision Abort)) in
  Alcotest.(check (list action)) "acks so the resends stop"
    [ Send (0, Decision_ack); Deliver Abort ]
    actions

let test_forgotten_participant_reacks () =
  (* Regression: a read-only participant has released and forgotten, but
     an ack-collecting coordinator cannot know that — it must re-ack
     duplicate decisions instead of ignoring them. *)
  let forgotten variant =
    let p =
      Two_pc.participant ~read_only:true ~variant ~self:1 ~coordinator:0
        ~peers:[ 0; 1 ] ~vote:true ~timeouts ()
    in
    fst (Two_pc.part_step p (Recv (0, Vote_req)))
  in
  let _, actions =
    Two_pc.part_step
      (forgotten Two_pc.Presumed_nothing)
      (Recv (0, Decision_msg Commit))
  in
  Alcotest.(check (list action)) "PrN: ack expected"
    [ Send (0, Decision_ack) ]
    actions;
  let _, actions =
    Two_pc.part_step
      (forgotten Two_pc.Presumed_commit)
      (Recv (0, Decision_msg Commit))
  in
  Alcotest.(check (list action)) "PrC commit: no ack expected" [] actions

let test_early_decision_req_gets_unknown () =
  (* Regression: a Decision_req arriving before the participant has any
     state (or while the prepared record is still in flight) must be
     answered Decision_unknown, not dropped — the asker is blocked. *)
  let p =
    Two_pc.participant ~variant:Two_pc.Presumed_abort ~self:1 ~coordinator:0
      ~peers:[ 0; 1; 2 ] ~vote:true ~timeouts ()
  in
  let _, actions = Two_pc.part_step p (Recv (2, Decision_req)) in
  Alcotest.(check (list action)) "idle answers unknown"
    [ Send (2, Decision_unknown) ]
    actions;
  let p, _ = Two_pc.part_step p (Recv (0, Vote_req)) in
  let _, actions = Two_pc.part_step p (Recv (2, Decision_req)) in
  Alcotest.(check (list action)) "logging-prepared answers unknown"
    [ Send (2, Decision_unknown) ]
    actions

(* --- 3PC ------------------------------------------------------------------ *)

let test_3pc_walk () =
  let c = Three_pc.coordinator ~participants:[ 0; 1 ] ~timeouts in
  let c, _ = Three_pc.coord_step c Start in
  let c, _ = Three_pc.coord_step c (Recv (0, Vote_yes)) in
  let c, actions = Three_pc.coord_step c (Recv (1, Vote_yes)) in
  Alcotest.(check (list action)) "precommit logged first"
    [ Clear_timer T_votes; Log (L_precommit, `Forced) ]
    actions;
  let c, actions = Three_pc.coord_step c (Log_done L_precommit) in
  Alcotest.(check (list action)) "precommit round"
    [ Send (0, Precommit_msg); Send (1, Precommit_msg);
      Set_timer (T_precommit_ack, timeouts.decision_wait) ]
    actions;
  let c, _ = Three_pc.coord_step c (Recv (0, Precommit_ack)) in
  let c, actions = Three_pc.coord_step c (Recv (1, Precommit_ack)) in
  Alcotest.(check (list action)) "commit after all acks"
    [ Clear_timer T_precommit_ack; Log (L_decision Commit, `Forced) ]
    actions;
  let _, actions = Three_pc.coord_step c (Log_done (L_decision Commit)) in
  Alcotest.(check (list action)) "commit broadcast, no acks needed"
    [ Send (0, Decision_msg Commit); Send (1, Decision_msg Commit);
      Deliver Commit; Log (L_end, `Lazy) ]
    actions

let test_3pc_participant_precommit_phase () =
  let p =
    Three_pc.participant ~self:1 ~coordinator:0 ~all:[ 0; 1; 2 ] ~vote:true
      ~timeouts
  in
  let p, _ = Three_pc.part_step p (Recv (0, Vote_req)) in
  let p, _ = Three_pc.part_step p (Log_done L_prepared) in
  let p, actions = Three_pc.part_step p (Recv (0, Precommit_msg)) in
  Alcotest.(check (list action)) "precommit forced"
    [ Clear_timer T_decision; Log (L_precommit, `Forced) ]
    actions;
  let p, actions = Three_pc.part_step p (Log_done L_precommit) in
  Alcotest.(check (list action)) "ack precommit"
    [ Send (0, Precommit_ack); Set_timer (T_decision, timeouts.decision_wait) ]
    actions;
  Alcotest.(check bool) "precommitted" true
    (Three_pc.part_state p = P_precommitted)

(* Regression (found by the nemesis lossy campaign): a pre-committed
   participant whose Precommit_ack was lost must re-ack a duplicate
   Precommit_msg, or the sender waits a full timeout for nothing. *)
let test_3pc_precommitted_reacks_duplicate_precommit () =
  let p =
    Three_pc.participant ~self:1 ~coordinator:0 ~all:[ 0; 1; 2 ] ~vote:true
      ~timeouts
  in
  let p, _ = Three_pc.part_step p (Recv (0, Vote_req)) in
  let p, _ = Three_pc.part_step p (Log_done L_prepared) in
  let p, _ = Three_pc.part_step p (Recv (0, Precommit_msg)) in
  let p, _ = Three_pc.part_step p (Log_done L_precommit) in
  let _, actions = Three_pc.part_step p (Recv (0, Precommit_msg)) in
  Alcotest.(check (list action)) "duplicate precommit re-acked"
    [ Send (0, Precommit_ack) ]
    actions

(* Regression (nemesis lossy campaign): a finished participant whose
   Decision_ack was lost must re-ack the coordinator's resent decision —
   otherwise an abort-wait coordinator resends forever and the protocol
   never quiesces. *)
let test_3pc_finished_reacks_resent_decision () =
  let p =
    Three_pc.participant ~self:1 ~coordinator:0 ~all:[ 0; 1; 2 ] ~vote:true
      ~timeouts
  in
  let p, _ = Three_pc.part_step p (Recv (0, Vote_req)) in
  let p, _ = Three_pc.part_step p (Log_done L_prepared) in
  let p, _ = Three_pc.part_step p (Recv (0, Decision_msg Abort)) in
  let p, actions = Three_pc.part_step p (Log_done (L_decision Abort)) in
  Alcotest.(check bool) "first ack sent" true
    (List.mem (Send (0, Decision_ack)) actions);
  let _, actions = Three_pc.part_step p (Recv (0, Decision_msg Abort)) in
  Alcotest.(check (list action)) "resent decision re-acked"
    [ Send (0, Decision_ack) ]
    actions

(* --- quorum commit epochs -------------------------------------------------- *)

let test_qc_participant_rejects_stale_epochs () =
  let config = Quorum_commit.config ~all:[ 0; 1; 2 ] () in
  let p =
    Quorum_commit.participant ~config ~self:1 ~coordinator:0 ~vote:true
      ~timeouts
  in
  let p, _ = Quorum_commit.part_step p (Recv (0, Vote_req)) in
  let p, _ = Quorum_commit.part_step p (Log_done L_prepared) in
  (* Accept the original coordinator's epoch-0 precommit. *)
  let p, actions = Quorum_commit.part_step p (Recv (0, Pq_precommit (0, 0))) in
  Alcotest.(check (list action)) "epoch 0 accepted"
    [ Clear_timer T_decision; Log (L_precommit, `Forced) ]
    actions;
  let p, _ = Quorum_commit.part_step p (Log_done L_precommit) in
  (* A later leader at a higher epoch re-drives: re-acked at that epoch. *)
  let p, actions = Quorum_commit.part_step p (Recv (2, Pq_precommit (1, 2))) in
  Alcotest.(check (list action)) "re-ack at higher epoch"
    [ Send (2, Pq_precommit_ack (1, 2)) ]
    actions;
  (* A stale epoch-0 pre-abort attempt is ignored entirely. *)
  let _, actions = Quorum_commit.part_step p (Recv (0, Pq_preabort (0, 0))) in
  Alcotest.(check (list action)) "stale epoch ignored" [] actions

(* Same resend-storm regression as 3PC, quorum-commit flavour. *)
let test_qc_finished_reacks_resent_decision () =
  let config = Quorum_commit.config ~all:[ 0; 1; 2 ] () in
  let p =
    Quorum_commit.participant ~config ~self:1 ~coordinator:0 ~vote:true
      ~timeouts
  in
  let p, _ = Quorum_commit.part_step p (Recv (0, Vote_req)) in
  let p, _ = Quorum_commit.part_step p (Log_done L_prepared) in
  let p, _ = Quorum_commit.part_step p (Recv (0, Decision_msg Abort)) in
  let p, actions = Quorum_commit.part_step p (Log_done (L_decision Abort)) in
  Alcotest.(check bool) "first ack sent" true
    (List.mem (Send (0, Decision_ack)) actions);
  (* The resend may come from the coordinator or an elected leader; the
     re-ack goes back to whoever asked. *)
  let _, actions = Quorum_commit.part_step p (Recv (2, Decision_msg Abort)) in
  Alcotest.(check (list action)) "resent decision re-acked"
    [ Send (2, Decision_ack) ]
    actions

let test_qc_coordinator_commits_at_quorum () =
  let config =
    Quorum_commit.config ~all:[ 0; 1; 2; 3; 4 ] ~commit_quorum:3
      ~abort_quorum:3 ()
  in
  let c = Quorum_commit.coordinator ~config ~self:0 ~timeouts in
  let c, _ = Quorum_commit.coord_step c Start in
  let c =
    List.fold_left
      (fun c s -> fst (Quorum_commit.coord_step c (Recv (s, Vote_yes))))
      c [ 0; 1; 2; 3; 4 ]
  in
  let c, _ = Quorum_commit.coord_step c (Log_done L_precommit) in
  (* Two acks: below Vc=3, still waiting. *)
  let c, _ = Quorum_commit.coord_step c (Recv (0, Pq_precommit_ack (0, 0))) in
  let c, actions = Quorum_commit.coord_step c (Recv (1, Pq_precommit_ack (0, 0))) in
  Alcotest.(check (list action)) "below quorum: wait" [] actions;
  Alcotest.(check bool) "no decision yet" true
    (Quorum_commit.coord_decision c = None);
  (* Third ack reaches the commit quorum: commit without the stragglers. *)
  let c, actions = Quorum_commit.coord_step c (Recv (2, Pq_precommit_ack (0, 0))) in
  Alcotest.(check (list action)) "commit at quorum"
    [ Clear_timer T_precommit_ack; Clear_timer T_resend;
      Log (L_decision Commit, `Forced) ]
    actions;
  Alcotest.(check bool) "decided" true
    (Quorum_commit.coord_decision c = Some Commit)

(* --- explorer-found regressions ----------------------------------------- *)

(* Walk a fresh QC participant to [B_uncertain]. *)
let qc_uncertain ~config ~self ~coordinator =
  let p =
    Quorum_commit.participant ~config ~self ~coordinator ~vote:true ~timeouts
  in
  let p, _ = Quorum_commit.part_step p (Recv (coordinator, Vote_req)) in
  let p, _ = Quorum_commit.part_step p (Log_done L_prepared) in
  p

(* Explorer counterexample: one pre-committed survivor plus rival
   pre-aborted reports.  The termination rule must count potential
   quorums (pre-decided-our-way plus uncertain) instead of demanding the
   rival set be empty — the old rule matched neither branch here and the
   group re-elected leaders forever. *)
let test_qc_leader_mixed_reports_commit () =
  let config = Quorum_commit.config ~all:[ 0; 1; 2 ] () in
  (* Vc = Va = 2.  Self (site 0) is uncertain and lowest-id, so its
     decision timeout elects it leader. *)
  let p = qc_uncertain ~config ~self:0 ~coordinator:1 in
  let p, actions = Quorum_commit.part_step p (Timeout T_decision) in
  Alcotest.(check (list action)) "election: collect states at epoch (1,0)"
    [ Send (1, Pq_state_req (1, 0)); Send (2, Pq_state_req (1, 0));
      Set_timer (T_state, timeouts.decision_wait) ]
    actions;
  let p, actions =
    Quorum_commit.part_step p (Recv (1, Pq_state_report ((1, 0), P_precommitted)))
  in
  Alcotest.(check (list action)) "still collecting" [] actions;
  (* Mixed picture: 1 pre-committed, 2 pre-aborted, self uncertain.
     |PC ∪ uncertain| = 2 ≥ Vc with a pre-committed witness, so the
     leader drives itself to pre-commit (commit takes precedence). *)
  let p, actions =
    Quorum_commit.part_step p (Recv (2, Pq_state_report ((1, 0), P_preaborted)))
  in
  Alcotest.(check (list action)) "drive commit through self"
    [ Set_timer (T_precommit_ack, timeouts.decision_wait);
      Log (L_precommit, `Forced) ]
    actions;
  (* Self pre-committed makes |PC| = 2 = Vc: decide. *)
  let p, actions = Quorum_commit.part_step p (Log_done L_precommit) in
  Alcotest.(check (list action)) "commit at quorum"
    [ Clear_timer T_decision; Clear_timer T_resend; Clear_timer T_state;
      Clear_timer T_precommit_ack; Log (L_decision Commit, `Forced) ]
    actions;
  let p, actions = Quorum_commit.part_step p (Log_done (L_decision Commit)) in
  Alcotest.(check (list action)) "leader distributes"
    [ Send (1, Decision_msg Commit); Send (2, Decision_msg Commit);
      Deliver Commit ]
    actions;
  Alcotest.(check bool) "decided commit" true
    (Quorum_commit.part_decision p = Some Commit)

let test_qc_leader_mixed_reports_abort () =
  let config = Quorum_commit.config ~all:[ 0; 1; 2 ] () in
  (* Self (site 0) reaches pre-abort under the original coordinator. *)
  let p = qc_uncertain ~config ~self:0 ~coordinator:1 in
  let p, _ = Quorum_commit.part_step p (Recv (1, Pq_preabort (0, 1))) in
  let p, _ = Quorum_commit.part_step p (Log_done L_preabort) in
  let p, _ = Quorum_commit.part_step p (Timeout T_decision) in
  let p, _ =
    Quorum_commit.part_step p (Recv (1, Pq_state_report ((1, 0), P_precommitted)))
  in
  (* 1 pre-committed vs 2 pre-aborted, nobody uncertain: the commit side
     cannot reach Vc = 2, the abort side holds Va = 2 already.  The old
     "rival set must be empty" rule blocked here. *)
  let p, actions =
    Quorum_commit.part_step p (Recv (2, Pq_state_report ((1, 0), P_preaborted)))
  in
  Alcotest.(check (list action)) "abort at quorum"
    [ Clear_timer T_decision; Clear_timer T_resend; Clear_timer T_state;
      Clear_timer T_precommit_ack; Log (L_decision Abort, `Forced) ]
    actions;
  let p, _ = Quorum_commit.part_step p (Log_done (L_decision Abort)) in
  Alcotest.(check bool) "decided abort" true
    (Quorum_commit.part_decision p = Some Abort)

(* Explorer counterexample: the presumptive leader (lowest-id site)
   crashed before its prepared record became durable and recovered with
   no memory of the transaction.  It answers [Decision_unknown]; the
   followers waited for its election forever.  The asker must usurp. *)
let test_qc_usurps_amnesiac_leader () =
  let config = Quorum_commit.config ~all:[ 0; 1; 2 ] () in
  let p = qc_uncertain ~config ~self:1 ~coordinator:0 in
  let p, actions = Quorum_commit.part_step p (Recv (0, Decision_unknown)) in
  Alcotest.(check (list action)) "usurps: collects states itself"
    [ Send (0, Pq_state_req (1, 1)); Send (2, Pq_state_req (1, 1));
      Set_timer (T_state, timeouts.decision_wait) ]
    actions;
  ignore p;
  (* "Unknown" from a higher-id peer is not an election cue. *)
  let p = qc_uncertain ~config ~self:1 ~coordinator:0 in
  let _, actions = Quorum_commit.part_step p (Recv (2, Decision_unknown)) in
  Alcotest.(check (list action)) "non-leader unknown ignored" [] actions

(* [Decision_unknown] is reserved for memoryless sites: anyone holding
   live protocol state for the transaction stays silent on
   [Decision_req], or answers with the decision once it has one. *)
let test_qc_live_state_silent_on_decision_req () =
  let config = Quorum_commit.config ~all:[ 0; 1; 2 ] () in
  let p = qc_uncertain ~config ~self:1 ~coordinator:0 in
  let p, actions = Quorum_commit.part_step p (Recv (2, Decision_req)) in
  Alcotest.(check (list action)) "uncertain participant silent" [] actions;
  let p, _ = Quorum_commit.part_step p (Recv (0, Decision_msg Abort)) in
  let p, _ = Quorum_commit.part_step p (Log_done (L_decision Abort)) in
  let _, actions = Quorum_commit.part_step p (Recv (2, Decision_req)) in
  Alcotest.(check (list action)) "finished participant answers"
    [ Send (2, Decision_msg Abort) ]
    actions;
  let c = Quorum_commit.coordinator ~config ~self:0 ~timeouts in
  let c, _ = Quorum_commit.coord_step c Start in
  let _, actions = Quorum_commit.coord_step c (Recv (1, Decision_req)) in
  Alcotest.(check (list action)) "undecided coordinator silent" [] actions

(* Explorer counterexample: a leader elected during a coordinator outage
   decides while the coordinator is still collecting precommit acks; the
   participants fence the coordinator's stale epoch, so without adoption
   it resends [Pq_precommit] forever and never delivers to its client. *)
let test_qc_deposed_coordinator_adopts_decision () =
  let config = Quorum_commit.config ~all:[ 0; 1; 2 ] () in
  let c = Quorum_commit.coordinator ~config ~self:0 ~timeouts in
  let c, _ = Quorum_commit.coord_step c Start in
  let c, actions = Quorum_commit.coord_step c (Recv (1, Decision_msg Abort)) in
  Alcotest.(check (list action)) "adopts the rival decision"
    [ Clear_timer T_votes; Clear_timer T_precommit_ack; Clear_timer T_resend;
      Deliver Abort; Log (L_decision Abort, `Lazy) ]
    actions;
  Alcotest.(check bool) "decided" true
    (Quorum_commit.coord_decision c = Some Abort)

(* 3PC flavour of the amnesiac-leader usurpation, driven to completion:
   the recovered memoryless site pledges abort in its state report, so
   the usurper terminates the whole group. *)
let test_3pc_usurps_amnesiac_leader () =
  let all = [ 0; 1; 2 ] in
  let p = Three_pc.participant ~self:1 ~coordinator:0 ~all ~vote:true ~timeouts in
  let p, _ = Three_pc.part_step p (Recv (0, Vote_req)) in
  let p, _ = Three_pc.part_step p (Log_done L_prepared) in
  let p, actions = Three_pc.part_step p (Recv (0, Decision_unknown)) in
  Alcotest.(check (list action)) "usurps: collects states"
    [ Send (0, State_req); Send (2, State_req);
      Set_timer (T_state, timeouts.decision_wait) ]
    actions;
  let p, actions = Three_pc.part_step p (Recv (0, State_report P_aborted)) in
  Alcotest.(check (list action)) "collecting" [] actions;
  let p, actions = Three_pc.part_step p (Recv (2, State_report P_uncertain)) in
  Alcotest.(check (list action)) "amnesiac pledge decides abort"
    [ Clear_timer T_decision; Clear_timer T_resend; Clear_timer T_state;
      Clear_timer T_precommit_ack; Log (L_decision Abort, `Forced) ]
    actions;
  let p, _ = Three_pc.part_step p (Log_done (L_decision Abort)) in
  Alcotest.(check bool) "decided abort" true
    (Three_pc.part_decision p = Some Abort)

let test_3pc_live_state_silent_on_decision_req () =
  let all = [ 0; 1; 2 ] in
  let p = Three_pc.participant ~self:1 ~coordinator:0 ~all ~vote:true ~timeouts in
  let p, _ = Three_pc.part_step p (Recv (0, Vote_req)) in
  let p, _ = Three_pc.part_step p (Log_done L_prepared) in
  let _, actions = Three_pc.part_step p (Recv (2, Decision_req)) in
  Alcotest.(check (list action)) "uncertain participant silent" [] actions;
  let c = Three_pc.coordinator ~participants:[ 1; 2 ] ~timeouts in
  let c, _ = Three_pc.coord_step c Start in
  let _, actions = Three_pc.coord_step c (Recv (1, Decision_req)) in
  Alcotest.(check (list action)) "undecided coordinator silent" [] actions

(* --- Paxos Commit degenerate case: F = 0 ≡ 2PC presumed-nothing ---------- *)

(* Gray & Lamport's reduction: with F = 0 Paxos Commit has a single
   acceptor co-located with the coordinator, ballot 0 never loses, and
   the message, log, and timer pattern collapses to exactly two-phase
   commit with the presumed-nothing discipline.  We prove the claim
   operationally rather than by inspection: every schedule the sandbox
   can produce — failure-free, crashed, and crash-then-recovered —
   must yield a byte-identical outcome fingerprint under both
   protocols: same decisions at the same sites, same message count,
   same forced/lazy write counts, same blocking verdict, same step and
   timeout totals. *)

let outcome_fingerprint (o : Sandbox.outcome) =
  let dec =
    o.Sandbox.decisions
    |> List.map (fun (s, d) ->
           Printf.sprintf "%d:%c" s (match d with Commit -> 'C' | Abort -> 'A'))
    |> String.concat ","
  in
  Printf.sprintf
    "dec=[%s] agree=%b all=%b msgs=%d forced=%d lazy=%d blocked=%b steps=%d \
     timeouts=%d"
    dec o.agreement o.all_decided o.messages o.forced_writes o.lazy_writes
    o.blocked o.steps o.timeouts_fired

let check_equiv name ?(crashes = []) ?(recoveries = []) ?max_steps ~seed ~sites
    ~votes () =
  let run proto =
    Sandbox.run ~seed ~crashes ~recoveries ?max_steps ~proto ~sites ~votes ()
  in
  let paxos = run (Sandbox.P_paxos { f = 0 }) in
  let prn = run (Sandbox.P_two_pc Two_pc.Presumed_nothing) in
  Alcotest.(check string)
    name
    (outcome_fingerprint prn)
    (outcome_fingerprint paxos)

let vote_patterns sites =
  let one_no i =
    Array.init sites (fun j -> j <> i)
  in
  [ Array.make sites true; Array.make sites false; one_no 0;
    one_no (sites - 1); one_no (sites / 2) ]

let test_paxos_f0_matches_prn_failure_free () =
  List.iter
    (fun sites ->
      List.iter
        (fun votes ->
          (* The canonical FIFO cost-measurement schedule first... *)
          let fifo proto = Sandbox.run_fifo ~proto ~sites ~votes () in
          Alcotest.(check string)
            (Printf.sprintf "fifo sites=%d" sites)
            (outcome_fingerprint
               (fifo (Sandbox.P_two_pc Two_pc.Presumed_nothing)))
            (outcome_fingerprint (fifo (Sandbox.P_paxos { f = 0 })));
          (* ...then a spread of randomized interleavings. *)
          for seed = 1 to 25 do
            check_equiv
              (Printf.sprintf "sites=%d seed=%d" sites seed)
              ~seed ~sites ~votes ()
          done)
        (vote_patterns sites))
    [ 2; 3; 5 ]

let test_paxos_f0_matches_prn_under_crashes () =
  let sites = 3 in
  List.iter
    (fun votes ->
      for victim = 0 to sites - 1 do
        for seed = 1 to 12 do
          let k = 3 + (seed mod 9) in
          (* Crash without recovery: both protocols must block (or not)
             identically — a dead F = 0 coordinator is as fatal to Paxos
             as a dead 2PC coordinator, its sole acceptor died with it. *)
          check_equiv
            (Printf.sprintf "crash s%d@%d seed=%d" victim k seed)
            ~crashes:[ (victim, k) ] ~max_steps:2_000 ~seed ~sites ~votes ();
          (* Crash then recover: the recovered machines must replay the
             same presumption, redistribution, and inquiry traffic. *)
          check_equiv
            (Printf.sprintf "crash+recover s%d@%d seed=%d" victim k seed)
            ~crashes:[ (victim, k) ]
            ~recoveries:[ (victim, 40) ]
            ~max_steps:2_000 ~seed ~sites ~votes ()
        done
      done)
    [ [| true; true; true |]; [| true; false; true |]; [| false; true; true |] ]

let test_paxos_f0_matches_prn_double_fault () =
  (* Coordinator and one participant both crash; only the coordinator
     recovers.  Exercises the recovered-coordinator presumption path and
     the Notice_down pending-set pruning on both sides. *)
  let sites = 4 in
  let votes = [| true; true; true; true |] in
  for seed = 1 to 10 do
    check_equiv
      (Printf.sprintf "double fault seed=%d" seed)
      ~crashes:[ (0, 5); (2, 8) ]
      ~recoveries:[ (0, 30) ]
      ~max_steps:2_000 ~seed ~sites ~votes ()
  done

let () =
  Alcotest.run "commit-steps"
    [
      ( "2pc-coordinator",
        [
          Alcotest.test_case "PrA commit walk" `Quick
            test_pra_coordinator_commit_walk;
          Alcotest.test_case "PrA abort is lazy" `Quick
            test_pra_coordinator_abort_is_lazy;
          Alcotest.test_case "PrN abort forced with acks" `Quick
            test_prn_coordinator_abort_is_forced_with_acks;
          Alcotest.test_case "PrC forces collecting first" `Quick
            test_prc_coordinator_forces_collecting_first;
        ] );
      ( "2pc-participant",
        [
          Alcotest.test_case "yes walk" `Quick test_participant_yes_walk;
          Alcotest.test_case "no vote aborts unilaterally" `Quick
            test_participant_no_vote_aborts_unilaterally;
          Alcotest.test_case "timeout asks around" `Quick
            test_participant_timeout_asks_around;
          Alcotest.test_case "read-only forgets" `Quick
            test_read_only_participant_forgets;
        ] );
      ( "2pc-recovery",
        [
          Alcotest.test_case "recovered coordinator redistributes" `Quick
            test_recovered_coordinator_redistributes;
          Alcotest.test_case "PrC commit needs nothing" `Quick
            test_recovered_prc_commit_needs_nothing;
          Alcotest.test_case "PrC collecting aborts" `Quick
            test_recovered_prc_collecting_aborts;
          Alcotest.test_case "nothing logged presumes" `Quick
            test_recovered_coordinator_presumes;
          Alcotest.test_case "recovered participant asks around" `Quick
            test_recovered_participant_asks_around;
          Alcotest.test_case "recovered outcomes by variant" `Quick
            test_recovered_participant_outcomes_by_variant;
        ] );
      ( "2pc-sweep-regressions",
        [
          Alcotest.test_case "idle participant adopts decision" `Quick
            test_idle_participant_adopts_decision;
          Alcotest.test_case "forgotten participant re-acks" `Quick
            test_forgotten_participant_reacks;
          Alcotest.test_case "early decision-req gets unknown" `Quick
            test_early_decision_req_gets_unknown;
        ] );
      ( "3pc",
        [
          Alcotest.test_case "full walk" `Quick test_3pc_walk;
          Alcotest.test_case "participant precommit phase" `Quick
            test_3pc_participant_precommit_phase;
          Alcotest.test_case "duplicate precommit re-acked" `Quick
            test_3pc_precommitted_reacks_duplicate_precommit;
          Alcotest.test_case "finished re-acks resent decision" `Quick
            test_3pc_finished_reacks_resent_decision;
        ] );
      ( "explorer-regressions",
        [
          Alcotest.test_case "QC mixed reports commit" `Quick
            test_qc_leader_mixed_reports_commit;
          Alcotest.test_case "QC mixed reports abort" `Quick
            test_qc_leader_mixed_reports_abort;
          Alcotest.test_case "QC usurps amnesiac leader" `Quick
            test_qc_usurps_amnesiac_leader;
          Alcotest.test_case "QC live state silent on decision-req" `Quick
            test_qc_live_state_silent_on_decision_req;
          Alcotest.test_case "QC deposed coordinator adopts" `Quick
            test_qc_deposed_coordinator_adopts_decision;
          Alcotest.test_case "3PC usurps amnesiac leader" `Quick
            test_3pc_usurps_amnesiac_leader;
          Alcotest.test_case "3PC live state silent on decision-req" `Quick
            test_3pc_live_state_silent_on_decision_req;
        ] );
      ( "paxos-f0-equivalence",
        [
          Alcotest.test_case "failure-free schedules" `Quick
            test_paxos_f0_matches_prn_failure_free;
          Alcotest.test_case "crash and recovery schedules" `Quick
            test_paxos_f0_matches_prn_under_crashes;
          Alcotest.test_case "double fault" `Quick
            test_paxos_f0_matches_prn_double_fault;
        ] );
      ( "quorum-commit",
        [
          Alcotest.test_case "epoch guards" `Quick
            test_qc_participant_rejects_stale_epochs;
          Alcotest.test_case "commits at quorum" `Quick
            test_qc_coordinator_commits_at_quorum;
          Alcotest.test_case "finished re-acks resent decision" `Quick
            test_qc_finished_reacks_resent_decision;
        ] );
    ]
