(* Tests for the schedule explorer: canonical-state fingerprinting
   (permuted hash-table insertion orders must hash equal; genuinely
   different state must not) and sleep-set DPOR soundness on toy systems
   small enough to enumerate by hand. *)

open Rt_sim
open Rt_storage
open Rt_explore

(* --- fingerprint canonicalization ------------------------------------- *)

let test_kv_permuted_insertion () =
  let fill kv order =
    List.iter (fun (k, v, ver) -> Kv.set kv ~key:k ~value:v ~version:ver) order
  in
  let a = Kv.create () and b = Kv.create () in
  let rows = [ ("x", "1", 1); ("y", "2", 3); ("z", "3", 2); ("w", "4", 7) ] in
  fill a rows;
  fill b (List.rev rows);
  Alcotest.(check bool) "equal contents" true (Kv.equal a b);
  Alcotest.(check (list (pair string (pair string int))))
    "snapshots identical"
    (List.map (fun (k, i) -> (k, (i.Kv.value, i.Kv.version))) (Kv.snapshot a))
    (List.map (fun (k, i) -> (k, (i.Kv.value, i.Kv.version))) (Kv.snapshot b))

let test_kv_different_values_differ () =
  let a = Kv.create () and b = Kv.create () in
  Kv.set a ~key:"x" ~value:"1" ~version:1;
  Kv.set b ~key:"x" ~value:"1" ~version:2;
  Alcotest.(check bool) "version differs" false (Kv.equal a b)

let tid n = Rt_types.Ids.Txn_id.make ~origin:0 ~seq:n ~start_ts:0

let test_wfg_permuted_edges () =
  let edges = [ (tid 1, tid 2); (tid 2, tid 3); (tid 3, tid 1) ] in
  let a = Rt_lock.Wfg.of_edges edges in
  let b = Rt_lock.Wfg.of_edges (List.rev edges) in
  Alcotest.(check string) "dumps equal" (Rt_lock.Wfg.dump a)
    (Rt_lock.Wfg.dump b);
  let c = Rt_lock.Wfg.of_edges [ (tid 1, tid 2); (tid 2, tid 3) ] in
  Alcotest.(check bool) "different edge sets differ" true
    (Rt_lock.Wfg.dump a <> Rt_lock.Wfg.dump c)

let test_checkpoint_permuted_store () =
  let snap order =
    let kv = Kv.create () in
    List.iter (fun (k, v) -> Kv.set kv ~key:k ~value:v ~version:1) order;
    let cp = Rt_storage.Checkpoint.create () in
    Rt_storage.Checkpoint.take ~shard_of:(fun k -> String.length k mod 2) cp
      ~kv ~lsn:5;
    Rt_storage.Checkpoint.dump cp
  in
  let rows = [ ("a", "1"); ("bb", "2"); ("c", "3"); ("dd", "4") ] in
  Alcotest.(check string) "dumps equal" (snap rows) (snap (List.rev rows));
  Alcotest.(check bool) "different contents differ" true
    (snap rows <> snap [ ("a", "1") ])

let test_wal_contents_distinguish () =
  let wal_dump records =
    let e = Engine.create () in
    let w = Wal.create e ~force_latency:(Time.us 100) () in
    List.iter (fun r -> ignore (Wal.append w r)) records;
    Wal.dump w ~record:Fun.id
  in
  Alcotest.(check string) "same records hash equal"
    (wal_dump [ "r1"; "r2" ])
    (wal_dump [ "r1"; "r2" ]);
  Alcotest.(check bool) "volatile suffix differs" true
    (wal_dump [ "r1"; "r2" ] <> wal_dump [ "r1"; "r3" ]);
  let forced =
    let e = Engine.create () in
    let w = Wal.create e ~force_latency:(Time.us 100) () in
    ignore (Wal.append w "r1");
    ignore (Wal.append w "r2");
    Wal.force w (fun () -> ());
    Engine.run e;
    Wal.dump w ~record:Fun.id
  in
  Alcotest.(check bool) "durability state differs" true
    (forced <> wal_dump [ "r1"; "r2" ])

(* The full cluster digest must be a pure function of the schedule:
   replaying the same decision trail twice rebuilds byte-identical
   leaf state. *)
let test_cluster_digest_deterministic () =
  match Sweep.find_scenario "2PC-PrN/full" with
  | None -> Alcotest.fail "scenario 2PC-PrN/full missing from matrix"
  | Some sc ->
      let make = Sweep.make_sys sc in
      let opts = Sweep.opts_of sc ~sleep:false in
      let r1 = Explore.follow ~opts make [] in
      let r2 = Explore.follow ~opts make [] in
      Alcotest.(check string) "leaf state replays identically" r1.rp_state
        r2.rp_state;
      Alcotest.(check (list (pair string string))) "clean leaf" []
        r1.rp_violations

(* --- sleep-set DPOR on hand-enumerable toys ---------------------------- *)

(* A toy system: [nsites] append-only logs, one Delivery-labelled event
   per [(dst, msg)] spec.  Deliveries to distinct sites are independent
   (disjoint scopes); deliveries to one site are dependent (append order
   is observable).  [record] collects the digest of every audited
   quiescent leaf, so tests can compare the reached-state sets across
   explorer configurations. *)
let toy_sys ~nsites ~deliveries ~record () =
  let e = Engine.create () in
  let logs = Array.make nsites [] in
  let desc_of = Hashtbl.create 8 in
  let digest () =
    Array.to_list logs
    |> List.mapi (fun i l ->
           Printf.sprintf "%d:[%s]" i (String.concat "," (List.rev l)))
    |> String.concat "|"
  in
  {
    Explore.ys_engine = e;
    ys_start =
      (fun () ->
        List.iter
          (fun (dst, msg) ->
            let id =
              Engine.schedule_at
                ~label:(Engine.Delivery { src = nsites; dst })
                e (Time.us 10)
                (fun () -> logs.(dst) <- msg :: logs.(dst))
            in
            Hashtbl.replace desc_of (Engine.event_seq id) msg)
          deliveries);
    ys_digest = digest;
    ys_delivery_class =
      (fun ~seq ->
        Explore.Choice
          (match Hashtbl.find_opt desc_of seq with Some m -> m | None -> "?"));
    ys_crash_ok = (fun ~site:_ ~point:_ -> false);
    ys_crash = (fun ~site:_ -> ());
    ys_drain = (fun () -> ());
    ys_audit =
      (fun () ->
        record (digest ());
        []);
  }

let toy_opts ~sleep ~dedup =
  {
    Explore.default_opts with
    op_sleep = sleep;
    op_dedup = dedup;
    op_max_executions = 1_000;
  }

let explore_toy ~nsites ~deliveries ~sleep ~dedup =
  let seen = Hashtbl.create 8 in
  let record d = Hashtbl.replace seen d () in
  let r =
    Explore.explore
      ~opts:(toy_opts ~sleep ~dedup)
      (toy_sys ~nsites ~deliveries ~record)
  in
  Alcotest.(check bool) "space fully covered" true r.r_complete;
  Alcotest.(check int) "no violations" 0 (List.length r.r_violating);
  let states =
    Hashtbl.fold (fun k () acc -> k :: acc) seen []
    |> List.sort String.compare
  in
  (r.r_stats, states)

(* Two deliveries to distinct sites commute: one Mazurkiewicz trace.
   Without sleep sets both interleavings run; with sleep sets the mirror
   order is cut as a sleep-blocked partial path. *)
let test_dpor_independent_pair () =
  let deliveries = [ (0, "x"); (1, "y") ] in
  let st0, states0 =
    explore_toy ~nsites:2 ~deliveries ~sleep:false ~dedup:false
  in
  Alcotest.(check int) "2 interleavings without POR" 2 st0.st_executions;
  Alcotest.(check int) "both audited" 2 st0.st_leaves;
  let st1, states1 =
    explore_toy ~nsites:2 ~deliveries ~sleep:true ~dedup:false
  in
  Alcotest.(check int) "one trace with sleep sets" 1 st1.st_leaves;
  Alcotest.(check int) "mirror path pruned" 1 st1.st_sleep_prunes;
  Alcotest.(check (list string)) "same reached states" states0 states1;
  Alcotest.(check int) "exactly one final state" 1 (List.length states1)

(* Two deliveries to one site conflict: both orders are distinct traces
   and sleep sets must not prune either. *)
let test_dpor_dependent_pair () =
  let deliveries = [ (0, "x"); (0, "y") ] in
  let st0, states0 =
    explore_toy ~nsites:1 ~deliveries ~sleep:false ~dedup:false
  in
  Alcotest.(check int) "2 interleavings" 2 st0.st_executions;
  let st1, states1 =
    explore_toy ~nsites:1 ~deliveries ~sleep:true ~dedup:false
  in
  Alcotest.(check int) "both orders kept" 2 st1.st_leaves;
  Alcotest.(check int) "nothing pruned" 0 st1.st_sleep_prunes;
  Alcotest.(check (list string)) "same reached states" states0 states1;
  Alcotest.(check int) "two final states" 2 (List.length states1)

(* Mixed case, fully hand-enumerable: a,b hit site 0 (dependent pair),
   c hits site 1 (independent of both).  3! = 6 interleavings collapse
   to 2 traces — the two orders of a,b with c slotted anywhere.

   Hand-run of the sleep-set DFS (alternatives in seq order a,b,c):
     1. a b c   -> leaf ab|c
     2. a c ... -> b asleep after independent c: pruned
     3. b a c   -> leaf ba|c   (a woken by dependent b)
     4. b c ... -> a asleep: pruned
     5. c ...   -> a,b both asleep: pruned
   5 executions, 2 audited leaves, 3 sleep prunes. *)
let test_dpor_mixed_triple () =
  let deliveries = [ (0, "a"); (0, "b"); (1, "c") ] in
  let st0, states0 =
    explore_toy ~nsites:2 ~deliveries ~sleep:false ~dedup:false
  in
  Alcotest.(check int) "6 interleavings without POR" 6 st0.st_executions;
  Alcotest.(check int) "all audited" 6 st0.st_leaves;
  let st1, states1 =
    explore_toy ~nsites:2 ~deliveries ~sleep:true ~dedup:false
  in
  Alcotest.(check int) "5 executions with sleep sets" 5 st1.st_executions;
  Alcotest.(check int) "2 traces audited" 2 st1.st_leaves;
  Alcotest.(check int) "3 paths pruned" 3 st1.st_sleep_prunes;
  Alcotest.(check (list string)) "same reached states" states0 states1;
  Alcotest.(check int) "two final states" 2 (List.length states1);
  (* Dedup must not lose either trace: the two leaf states differ, so
     both still get audited with the cache on. *)
  let _, states2 = explore_toy ~nsites:2 ~deliveries ~sleep:true ~dedup:true in
  Alcotest.(check (list string)) "dedup preserves the state set" states0
    states2

let () =
  Alcotest.run "explore"
    [
      ( "fingerprints",
        [
          Alcotest.test_case "kv permuted insertion" `Quick
            test_kv_permuted_insertion;
          Alcotest.test_case "kv different values" `Quick
            test_kv_different_values_differ;
          Alcotest.test_case "wfg permuted edges" `Quick
            test_wfg_permuted_edges;
          Alcotest.test_case "checkpoint permuted store" `Quick
            test_checkpoint_permuted_store;
          Alcotest.test_case "wal contents distinguish" `Quick
            test_wal_contents_distinguish;
          Alcotest.test_case "cluster digest deterministic" `Quick
            test_cluster_digest_deterministic;
        ] );
      ( "dpor",
        [
          Alcotest.test_case "independent pair" `Quick
            test_dpor_independent_pair;
          Alcotest.test_case "dependent pair" `Quick test_dpor_dependent_pair;
          Alcotest.test_case "mixed triple" `Quick test_dpor_mixed_triple;
        ] );
    ]
