(* Tests for the crash-point sweep harness, plus minimized site-level
   regressions for the bugs the sweep flushed out.  The full matrix runs
   from bin/crashpoints.exe (and `make crash`); here a small slice keeps
   the suite fast while still exercising discovery, injection, auditing,
   and determinism end to end. *)

open Rt_sim
open Rt_core
module Sweep = Rt_crash.Crash_sweep
module P = Rt_commit.Protocol
module Counter = Rt_metrics.Counter

let find_protocol name =
  (name, List.assoc name Sweep.default_protocols)

(* --- the harness itself -------------------------------------------------- *)

let test_mini_sweep_clean () =
  (* One protocol, one cluster size: every discovered crash point at the
     coordinator and one participant must audit clean. *)
  let report =
    Sweep.sweep ~seed:0 ~protocols:[ find_protocol "2PC-PrA" ] ~ns:[ 3 ] ()
  in
  Alcotest.(check int) "no violations" 0 (List.length report.Sweep.rp_violations);
  Alcotest.(check bool) "cases discovered" true (report.Sweep.rp_cases > 10)

let test_sweep_discovers_wal_points () =
  (* The instrumented WAL must announce both sides of a forced write:
     before the records are durable and after. *)
  let _, protocol = find_protocol "2PC-PrN" in
  let stream = Sweep.discover ~protocol ~n:3 ~seed:0 () in
  let points = List.map (fun (_, p, _) -> p) stream in
  Alcotest.(check bool) "volatile side seen" true
    (List.mem "wal:force-volatile" points);
  Alcotest.(check bool) "durable side seen" true
    (List.mem "wal:force-durable" points);
  (* And the protocol-step boundaries of both roles. *)
  Alcotest.(check bool) "participant steps seen" true
    (List.exists (fun p -> String.length p > 5 && String.sub p 0 5 = "part:") points);
  Alcotest.(check bool) "coordinator steps seen" true
    (List.exists (fun p -> String.length p > 6 && String.sub p 0 6 = "coord:") points)

let test_sweep_deterministic () =
  (* Same seed, same report — byte for byte. *)
  let run () =
    Sweep.render
      (Sweep.sweep ~seed:7 ~protocols:[ find_protocol "2PC-PrC" ] ~ns:[ 3 ] ())
  in
  Alcotest.(check string) "byte-identical" (run ()) (run ())

(* --- minimized regressions ------------------------------------------------ *)

(* A standalone participant site driven by hand: no Site.start means no
   heartbeats, so the engine drains exactly when every protocol timer is
   cancelled — which is what the orphan-sweep regression is about. *)
let standalone_site ?(config = Config.default ~sites:2 ()) () =
  let engine = Engine.create ~seed:0 () in
  let sent = ref [] in
  let site =
    Site.create ~engine ~id:1 ~config
      ~send:(fun ~dst msg -> sent := (dst, msg) :: !sent)
      ~counters:(Counter.create ())
  in
  (engine, site, fun () -> List.rev !sent)

let txn = Rt_types.Ids.Txn_id.make ~origin:0 ~seq:1 ~start_ts:Time.zero

let vote_req =
  Msg.txn_msg txn
    (Msg.Commit_msg
       {
         pmsg = P.Vote_req;
         prepare =
           Some
             {
               Msg.writes = [ ("k", "v", 1) ];
               participants = [ 0; 1 ];
               presumed_down = [];
             };
       })

let decision d = Msg.txn_msg txn (Msg.Commit_msg { pmsg = P.Decision_msg d; prepare = None })

let commit_replies sent =
  List.filter_map
    (fun (dst, (m : Msg.t)) ->
      match m.payload with
      | Msg.Commit_msg { pmsg; _ } -> Some (dst, pmsg)
      | _ -> None)
    sent

let test_orphan_sweep_cancelled_on_resolve () =
  (* Regression: the orphan sweep used to re-arm itself unconditionally
     once a machine attached, so a fully resolved participant kept one
     timer alive forever.  After resolution the engine must drain. *)
  let engine, site, _sent = standalone_site () in
  ignore
    (Engine.schedule_at engine (Time.ms 1) (fun () ->
         Site.receive site ~src:0 vote_req));
  ignore
    (Engine.schedule_at engine (Time.ms 10) (fun () ->
         Site.receive site ~src:0 (decision P.Abort)));
  Engine.run ~until:(Time.sec 120) engine;
  Alcotest.(check int) "engine drained: no orphan-sweep respawn" 0
    (Engine.live_pending engine);
  Alcotest.(check int) "no protocol timers" 0
    (Site.pending_protocol_timers site);
  Alcotest.(check int) "no locks" 0 (Site.held_locks site)

let test_orphan_sweep_window_configurable () =
  (* The sweep window is orphan_window_factor * decision_wait.  With a
     small factor a machine-less context is doomed quickly; its locks are
     released and the context resolves as a genuine local abort. *)
  let config = { (Config.default ~sites:2 ()) with orphan_window_factor = 2 } in
  let engine, site, _sent = standalone_site ~config () in
  (* A lock-acquiring write request, but the commit protocol never
     arrives: the context stays machine-less. *)
  ignore
    (Engine.schedule_at engine (Time.ms 1) (fun () ->
         Site.receive site ~src:0
           (Msg.txn_msg txn (Msg.Write_req { key = "k"; value = "v" }))));
  (* factor 2 * decision_wait 50ms = 100ms; well before the default 500ms. *)
  Engine.run ~until:(Time.ms 300) engine;
  Alcotest.(check int) "doomed and released" 0 (Site.held_locks site);
  Engine.run ~until:(Time.sec 120) engine;
  Alcotest.(check int) "engine drained" 0 (Engine.live_pending engine)

let test_unknown_decision_req_answers_unknown () =
  (* Regression: a non-origin site asked about a transaction it has no
     memory of used to invent an authoritative abort — under the
     read-only optimization a forgotten participant is exactly such a
     site, and the transaction may well have committed.  It must answer
     Decision_unknown (and not pledge anything). *)
  let engine, site, sent = standalone_site () in
  ignore
    (Engine.schedule_at engine (Time.ms 1) (fun () ->
         Site.receive site ~src:0
           (Msg.txn_msg txn (Msg.Commit_msg { pmsg = P.Decision_req; prepare = None }))));
  Engine.run ~until:(Time.sec 1) engine;
  (match commit_replies (sent ()) with
  | [ (0, P.Decision_unknown) ] -> ()
  | replies ->
      Alcotest.failf "expected Decision_unknown to site 0, got %d replies: %s"
        (List.length replies)
        (String.concat "; "
           (List.map
              (fun (dst, pmsg) ->
                Format.asprintf "%d:%a" dst P.pp_msg pmsg)
              replies)));
  Alcotest.(check (list reject)) "no decision recorded" []
    (List.map (fun _ -> ()) (Site.decided_txns site))

let test_memoryless_decision_msg_is_acked () =
  (* Regression: a decision reaching a site with no memory of the
     transaction (recovered, log lost before prepare was forced) used to
     be dropped, so an ack-collecting coordinator resent forever.  The
     site must adopt the outcome and acknowledge it. *)
  let engine, site, sent = standalone_site () in
  ignore
    (Engine.schedule_at engine (Time.ms 1) (fun () ->
         Site.receive site ~src:0 (decision P.Commit)));
  Engine.run ~until:(Time.sec 1) engine;
  (match commit_replies (sent ()) with
  | [ (0, P.Decision_ack) ] -> ()
  | replies ->
      Alcotest.failf "expected Decision_ack to site 0, got %d replies"
        (List.length replies));
  match Site.decided_txns site with
  | [ (t, d) ]
    when Rt_types.Ids.Txn_id.equal t txn && P.decision_equal d P.Commit ->
      ()
  | ds -> Alcotest.failf "expected one Commit outcome, got %d" (List.length ds)

let () =
  Alcotest.run "crashpoints"
    [
      ( "harness",
        [
          Alcotest.test_case "mini sweep is clean" `Quick test_mini_sweep_clean;
          Alcotest.test_case "discovers wal + step points" `Quick
            test_sweep_discovers_wal_points;
          Alcotest.test_case "deterministic report" `Quick
            test_sweep_deterministic;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "orphan sweep cancelled on resolve" `Quick
            test_orphan_sweep_cancelled_on_resolve;
          Alcotest.test_case "orphan window configurable" `Quick
            test_orphan_sweep_window_configurable;
          Alcotest.test_case "unknown decision-req answers unknown" `Quick
            test_unknown_decision_req_answers_unknown;
          Alcotest.test_case "memoryless decision is acked" `Quick
            test_memoryless_decision_msg_is_acked;
        ] );
    ]
