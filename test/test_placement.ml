(* Tests for the placement layer: key→shard maps, shard→replica-set
   layouts, the degenerate full-replication case, and the Config.validate
   rejections that guard it all. *)

open Rt_placement
module Config = Rt_core.Config
module Time = Rt_sim.Time

let ids n = List.init n (fun i -> i)

(* --- Shard_map ------------------------------------------------------ *)

let test_hash_map () =
  let m = Shard_map.hash ~shards:4 in
  Alcotest.(check int) "shard count" 4 (Shard_map.shards m);
  (* Deterministic: same key, same shard, every call. *)
  let s = Shard_map.shard_of m "k000042" in
  Alcotest.(check int) "stable" s (Shard_map.shard_of m "k000042");
  Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
  (* All shards reachable over a modest keyspace (FNV spreads). *)
  let hit = Array.make 4 false in
  for i = 0 to 199 do
    hit.(Shard_map.shard_of m (Rt_workload.Mix.key_of i)) <- true
  done;
  Alcotest.(check bool) "all shards hit" true (Array.for_all Fun.id hit);
  Alcotest.(check int) "single shard degenerate" 0
    (Shard_map.shard_of (Shard_map.hash ~shards:1) "anything")

let test_range_map () =
  let m = Shard_map.range ~boundaries:[ "g"; "n" ] in
  Alcotest.(check int) "3 shards from 2 boundaries" 3 (Shard_map.shards m);
  Alcotest.(check int) "below first" 0 (Shard_map.shard_of m "apple");
  Alcotest.(check int) "at boundary" 1 (Shard_map.shard_of m "g");
  Alcotest.(check int) "between" 1 (Shard_map.shard_of m "house");
  Alcotest.(check int) "top shard" 2 (Shard_map.shard_of m "zebra")

let test_map_rejections () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Shard_map.hash: shards must be positive") (fun () ->
      ignore (Shard_map.hash ~shards:0));
  Alcotest.check_raises "unordered boundaries"
    (Invalid_argument "Shard_map.range: boundaries must be strictly increasing")
    (fun () -> ignore (Shard_map.range ~boundaries:[ "n"; "g" ]));
  Alcotest.check_raises "duplicate boundaries"
    (Invalid_argument "Shard_map.range: boundaries must be strictly increasing")
    (fun () -> ignore (Shard_map.range ~boundaries:[ "g"; "g" ]))

(* --- Placement ------------------------------------------------------ *)

let test_round_robin_layout () =
  let p =
    Placement.create ~map:(Shard_map.range ~boundaries:[ "b" ]) ~sites:5
      ~degree:3 ()
  in
  Alcotest.(check (list int)) "shard 0 replicas" [ 0; 1; 2 ]
    (Placement.replicas p ~shard:0);
  Alcotest.(check (list int)) "shard 1 replicas" [ 1; 2; 3 ]
    (Placement.replicas p ~shard:1);
  Alcotest.(check (list int)) "key routing" [ 0; 1; 2 ]
    (Placement.replicas_of_key p "a");
  Alcotest.(check bool) "site 4 owns nothing" true
    (Placement.shards_of_site p 4 = []);
  Alcotest.(check bool) "not full" false (Placement.is_full p);
  Alcotest.(check bool) "site 1 owns a" true
    (Placement.owns_key p ~site:1 "a");
  Alcotest.(check bool) "site 3 does not own a" false
    (Placement.owns_key p ~site:3 "a");
  (* co_replicas: sites sharing at least one shard, self excluded. *)
  Alcotest.(check (list int)) "co-replicas of 0" [ 1; 2 ]
    (Placement.co_replicas p ~site:0);
  Alcotest.(check (list int)) "co-replicas of 1" [ 0; 2; 3 ]
    (Placement.co_replicas p ~site:1);
  Alcotest.(check (list int)) "co-replicas of 4" []
    (Placement.co_replicas p ~site:4)

let test_spread_layout () =
  let p =
    Placement.create ~layout:Placement.Spread
      ~map:(Shard_map.range ~boundaries:[ "b" ])
      ~sites:6 ~degree:3 ()
  in
  Alcotest.(check (list int)) "disjoint triple 0" [ 0; 1; 2 ]
    (Placement.replicas p ~shard:0);
  Alcotest.(check (list int)) "disjoint triple 1" [ 3; 4; 5 ]
    (Placement.replicas p ~shard:1)

let test_full_degenerate () =
  let p = Placement.full ~sites:4 in
  Alcotest.(check bool) "is full" true (Placement.is_full p);
  Alcotest.(check int) "one shard" 1 (Placement.shards p);
  Alcotest.(check (list int)) "every site replicates it" (ids 4)
    (Placement.replicas p ~shard:0);
  Alcotest.(check (list int)) "co-replicas = all others" [ 0; 1; 3 ]
    (Placement.co_replicas p ~site:2);
  Alcotest.(check bool) "owns everything" true
    (List.for_all (fun s -> Placement.owns_key p ~site:s "x") (ids 4))

let test_placement_rejections () =
  let map = Shard_map.hash ~shards:2 in
  Alcotest.check_raises "degree 0"
    (Invalid_argument "Placement.create: replication degree must be at least 1")
    (fun () -> ignore (Placement.create ~map ~sites:3 ~degree:0 ()));
  Alcotest.check_raises "degree > sites"
    (Invalid_argument "Placement.create: replication degree exceeds site count")
    (fun () -> ignore (Placement.create ~map ~sites:3 ~degree:4 ()));
  Alcotest.check_raises "no sites"
    (Invalid_argument "Placement.create: sites must be positive") (fun () ->
      ignore (Placement.create ~map ~sites:0 ~degree:1 ()))

(* Every shard gets exactly [degree] distinct replicas, all in range. *)
let prop_replica_sets_well_formed =
  QCheck.Test.make ~name:"replica sets well formed" ~count:300
    QCheck.(
      quad (int_range 1 12) (int_range 1 12) (int_range 1 8) bool)
    (fun (sites, degree, shards, spread) ->
      QCheck.assume (degree <= sites);
      let layout =
        if spread then Placement.Spread else Placement.Round_robin
      in
      let p =
        Placement.create ~layout ~map:(Shard_map.hash ~shards) ~sites ~degree
          ()
      in
      List.for_all
        (fun shard ->
          let rs = Placement.replicas p ~shard in
          List.length rs = degree
          && List.sort_uniq Int.compare rs = rs
          && List.for_all (fun s -> s >= 0 && s < sites) rs)
        (List.init shards Fun.id))

(* shard_of_key and owns_key agree with replica membership. *)
let prop_ownership_consistent =
  QCheck.Test.make ~name:"ownership matches replica sets" ~count:300
    QCheck.(triple (int_range 1 9) (int_range 1 6) small_printable_string)
    (fun (sites, shards, key) ->
      let degree = 1 + (shards mod sites) in
      let p =
        Placement.create ~map:(Shard_map.hash ~shards) ~sites ~degree ()
      in
      let rs = Placement.replicas_of_key p key in
      List.for_all
        (fun site ->
          Placement.owns_key p ~site key = List.mem site rs)
        (ids sites))

(* --- Config.validate ------------------------------------------------ *)

let invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

let test_validate_rejections () =
  let base = Config.default ~sites:3 () in
  let check name pred cfg =
    Alcotest.(check bool) name pred (invalid (fun () -> Config.validate cfg))
  in
  check "valid default passes" false base;
  check "non-positive sites" true { base with sites = 0 };
  check "negative sites" true { base with sites = -2 };
  check "placement site mismatch" true
    { base with placement = Some (Placement.full ~sites:5) };
  check "degree beyond sites is unconstructible -> site mismatch" true
    {
      base with
      placement =
        Some
          (Placement.create ~map:(Shard_map.hash ~shards:2) ~sites:5 ~degree:5
             ());
    };
  check "negative force latency" true
    { base with force_latency = Time.us (-1) };
  check "negative lock wait" true
    { base with lock_wait_timeout = Time.us (-5) };
  check "negative op timeout" true { base with op_timeout = Time.us (-5) };
  check "zero heartbeat interval" true
    { base with heartbeat_interval = Time.zero };
  check "heartbeat miss < 1" true { base with heartbeat_miss = 0 };
  check "negative checkpoint interval" true { base with checkpoint_every = -1 };
  check "negative recovery cost" true
    { base with recovery_per_record = Time.us (-1) };
  check "zero retry backoff base" true
    { base with retry_backoff_base = Time.zero };
  check "negative retry backoff base" true
    { base with retry_backoff_base = Time.us (-3) };
  check "zero retry backoff cap" true
    {
      base with
      retry_backoff_base = Time.us 1;
      retry_backoff_cap = Time.zero;
    };
  check "retry backoff cap below base" true
    {
      base with
      retry_backoff_base = Time.ms 10;
      retry_backoff_cap = Time.ms 1;
    };
  check "equal retry backoff base and cap passes" false
    { base with retry_backoff_base = Time.ms 1; retry_backoff_cap = Time.ms 1 };
  check "primary out of range" true
    { base with replica_control = Rt_replica.Replica_control.primary 7 };
  check "quorum thresholds below 1" true
    {
      base with
      commit_protocol =
        Config.Quorum_commit { commit_quorum = Some 0; abort_quorum = Some 3 };
    };
  check "quorum thresholds violate intersection" true
    {
      base with
      commit_protocol =
        Config.Quorum_commit { commit_quorum = Some 1; abort_quorum = Some 1 };
    };
  (* A matching sharded placement passes. *)
  check "valid sharded placement passes" false
    {
      base with
      placement =
        Some
          (Placement.create ~map:(Shard_map.hash ~shards:2) ~sites:3 ~degree:2
             ());
    }

let () =
  Alcotest.run "placement"
    [
      ( "shard_map",
        [
          Alcotest.test_case "hash strategy" `Quick test_hash_map;
          Alcotest.test_case "range strategy" `Quick test_range_map;
          Alcotest.test_case "rejections" `Quick test_map_rejections;
        ] );
      ( "placement",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin_layout;
          Alcotest.test_case "spread" `Quick test_spread_layout;
          Alcotest.test_case "full degenerate" `Quick test_full_degenerate;
          Alcotest.test_case "rejections" `Quick test_placement_rejections;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_replica_sets_well_formed;
          QCheck_alcotest.to_alcotest prop_ownership_consistent;
        ] );
      ( "config",
        [
          Alcotest.test_case "validate rejections" `Quick
            test_validate_rejections;
        ] );
    ]
