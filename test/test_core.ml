(* Integration tests for the cluster: end-to-end replicated transactions,
   replica convergence, conflict handling, crash/recovery, partitions,
   and the cross-protocol matrix. *)

open Rt_sim
open Rt_core
module Mix = Rt_workload.Mix

let ops_w kvs = List.map (fun (k, v) -> Mix.Write (k, v)) kvs
let ops_r keys = List.map (fun k -> Mix.Read k) keys

let all_commit_protocols =
  [
    Config.Two_phase Rt_commit.Two_pc.Presumed_nothing;
    Config.Two_phase Rt_commit.Two_pc.Presumed_abort;
    Config.Two_phase Rt_commit.Two_pc.Presumed_commit;
    Config.Three_phase;
    Config.Quorum_commit { commit_quorum = None; abort_quorum = None };
    Config.Paxos_commit { f = None };
  ]

let mk ?(sites = 3) ?(commit = Config.Two_phase Rt_commit.Two_pc.Presumed_abort)
    ?(rc = Rt_replica.Replica_control.rowa) ?(seed = 1) () =
  let config =
    { (Config.default ~sites ()) with commit_protocol = commit;
      replica_control = rc; seed }
  in
  Cluster.create config

let run_for cluster duration =
  Cluster.run ~until:(Time.add (Cluster.now cluster) duration) cluster

let run_one cluster ~site ~ops =
  let result = ref None in
  Cluster.submit cluster ~site ~ops ~k:(fun o -> result := Some o);
  run_for cluster (Time.sec 2);
  !result

let value_at cluster site key =
  Option.map
    (fun (i : Rt_storage.Kv.item) -> i.value)
    (Rt_storage.Kv.get (Site.kv (Cluster.site cluster site)) key)

let check_committed = function
  | Some Site.Committed -> ()
  | Some (Site.Aborted r) ->
      Alcotest.failf "expected commit, got abort (%s)"
        (Site.abort_reason_label r)
  | None -> Alcotest.fail "transaction never completed"

(* --- basic write path, per commit protocol --------------------------- *)

let test_commit_replicates commit () =
  let cluster = mk ~commit () in
  let outcome =
    run_one cluster ~site:0 ~ops:(ops_w [ ("x", "1"); ("y", "2") ])
  in
  check_committed outcome;
  for s = 0 to 2 do
    Alcotest.(check (option string))
      (Printf.sprintf "x at site %d" s)
      (Some "1") (value_at cluster s "x");
    Alcotest.(check (option string))
      (Printf.sprintf "y at site %d" s)
      (Some "2") (value_at cluster s "y")
  done;
  Alcotest.(check bool) "replicas converged" true (Cluster.converged cluster)

let test_read_after_write () =
  let cluster = mk () in
  check_committed (run_one cluster ~site:0 ~ops:(ops_w [ ("a", "v") ]));
  (* A later transaction from a different site reads and commits. *)
  check_committed (run_one cluster ~site:1 ~ops:(ops_r [ "a" ]));
  Alcotest.(check bool) "converged" true (Cluster.converged cluster)

let test_sequential_transactions () =
  let cluster = mk () in
  for i = 1 to 20 do
    check_committed
      (run_one cluster ~site:(i mod 3)
         ~ops:(ops_w [ ("k", string_of_int i) ]))
  done;
  Alcotest.(check (option string)) "final value" (Some "20")
    (value_at cluster 0 "k");
  Alcotest.(check bool) "converged" true (Cluster.converged cluster)

(* --- concurrency ------------------------------------------------------ *)

let test_concurrent_disjoint_commit () =
  let cluster = mk () in
  let outcomes = ref [] in
  for i = 0 to 9 do
    Cluster.submit cluster ~site:(i mod 3)
      ~ops:(ops_w [ (Printf.sprintf "key%d" i, "v") ])
      ~k:(fun o -> outcomes := o :: !outcomes)
  done;
  run_for cluster (Time.sec 2);
  Alcotest.(check int) "all completed" 10 (List.length !outcomes);
  List.iter (fun o -> check_committed (Some o)) !outcomes;
  Alcotest.(check bool) "converged" true (Cluster.converged cluster)

(* Staggered writers conflict through lock queues and all commit in
   turn. *)
let test_conflicting_writes_serialize () =
  let cluster = mk () in
  let engine = Cluster.engine cluster in
  let done_count = ref 0 and committed = ref 0 in
  for i = 0 to 4 do
    ignore
      (Engine.schedule_at engine (Time.ms (2 * i)) (fun () ->
           Cluster.submit cluster ~site:(i mod 3)
             ~ops:(ops_w [ ("hot", Printf.sprintf "w%d" i) ])
             ~k:(fun o ->
               incr done_count;
               match o with Site.Committed -> incr committed | _ -> ())))
  done;
  run_for cluster (Time.sec 5);
  Alcotest.(check int) "all completed" 5 !done_count;
  Alcotest.(check int) "all committed" 5 !committed;
  Alcotest.(check bool) "converged" true (Cluster.converged cluster);
  Alcotest.(check (option string)) "last writer wins" (Some "w4")
    (value_at cluster 0 "hot")

(* Simultaneous writers may all fall to distributed deadlock (resolved by
   lock-wait timeout, the classical discipline) — but the replicas must
   stay consistent and any installed value must belong to a committed
   writer. *)
let test_conflicting_writes_simultaneous () =
  let cluster = mk () in
  let done_count = ref 0 and winners = ref [] in
  for i = 0 to 4 do
    let v = Printf.sprintf "w%d" i in
    Cluster.submit cluster ~site:(i mod 3)
      ~ops:(ops_w [ ("hot", v) ])
      ~k:(fun o ->
        incr done_count;
        match o with Site.Committed -> winners := v :: !winners | _ -> ())
  done;
  run_for cluster (Time.sec 5);
  Alcotest.(check int) "all completed" 5 !done_count;
  Alcotest.(check bool) "converged" true (Cluster.converged cluster);
  match value_at cluster 0 "hot" with
  | Some v ->
      Alcotest.(check bool) "final value from a committed writer" true
        (List.mem v !winners)
  | None ->
      Alcotest.(check int) "no value means nobody committed" 0
        (List.length !winners)

(* --- crash / recovery ------------------------------------------------- *)

let test_crash_and_recover_available_copies () =
  let rc = Rt_replica.Replica_control.available_copies in
  let cluster = mk ~rc () in
  check_committed (run_one cluster ~site:0 ~ops:(ops_w [ ("a", "1") ]));
  Cluster.crash_site cluster 2;
  run_for cluster (Time.ms 2100);
  (* Writes continue with a site down under available copies. *)
  check_committed (run_one cluster ~site:0 ~ops:(ops_w [ ("a", "2") ]));
  (* The crashed site recovers, catches up, and converges. *)
  Cluster.recover_site cluster 2;
  run_for cluster (Time.ms 4500);
  Alcotest.(check bool) "site 2 serving again" true
    (Site.serving (Cluster.site cluster 2));
  Alcotest.(check (option string)) "caught up" (Some "2")
    (value_at cluster 2 "a")

let test_rowa_blocks_when_site_down () =
  let cluster = mk () in
  Cluster.crash_site cluster 2;
  run_for cluster (Time.ms 100);
  (* ROWA writes need every copy: expect an availability abort. *)
  match run_one cluster ~site:0 ~ops:(ops_w [ ("a", "1") ]) with
  | Some (Site.Aborted Site.Unavailable) -> ()
  | Some Site.Committed -> Alcotest.fail "ROWA write committed with a site down"
  | Some (Site.Aborted r) ->
      Alcotest.failf "unexpected abort reason %s" (Site.abort_reason_label r)
  | None -> Alcotest.fail "no outcome"

let test_quorum_tolerates_minority_crash () =
  let rc = Rt_replica.Replica_control.majority ~sites:5 in
  let commit = Config.Quorum_commit { commit_quorum = None; abort_quorum = None } in
  let cluster = mk ~sites:5 ~rc ~commit () in
  Cluster.crash_site cluster 3;
  Cluster.crash_site cluster 4;
  run_for cluster (Time.ms 100);
  check_committed (run_one cluster ~site:0 ~ops:(ops_w [ ("q", "1") ]))

let test_coordinator_crash_recovery_2pc () =
  (* Crash the coordinator shortly after submission; surviving
     participants must terminate consistently once it recovers. *)
  let cluster = mk ~seed:5 () in
  let outcome = ref None in
  Cluster.submit cluster ~site:0 ~ops:(ops_w [ ("a", "1"); ("b", "2") ])
    ~k:(fun o -> outcome := Some o);
  ignore
    (Engine.schedule_at (Cluster.engine cluster) (Time.us 400) (fun () ->
         Cluster.crash_site cluster 0));
  ignore
    (Engine.schedule_at (Cluster.engine cluster) (Time.ms 50) (fun () ->
         Cluster.recover_site cluster 0));
  run_for cluster (Time.sec 3);
  (* The client was told the site died. *)
  (match !outcome with
  | Some (Site.Aborted Site.Site_down) | Some (Site.Aborted Site.Protocol_abort)
  | Some Site.Committed ->
      ()
  | Some (Site.Aborted r) ->
      Alcotest.failf "unexpected reason %s" (Site.abort_reason_label r)
  | None -> Alcotest.fail "client never notified");
  (* No participant stays unresolved once everyone is back. *)
  Array.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "no stuck participants at %d" (Site.id s))
        0
        (Site.active_participants s))
    (Cluster.sites cluster);
  Alcotest.(check bool) "replicas agree" true (Cluster.converged cluster)

(* --- partitions -------------------------------------------------------- *)

let test_partition_quorum_majority_side_continues () =
  let rc = Rt_replica.Replica_control.majority ~sites:5 in
  let commit = Config.Quorum_commit { commit_quorum = None; abort_quorum = None } in
  let cluster = mk ~sites:5 ~rc ~commit ~seed:3 () in
  Cluster.partition cluster [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  (* Let failure detectors notice. *)
  run_for cluster (Time.ms 100);
  (* Majority side commits. *)
  check_committed (run_one cluster ~site:0 ~ops:(ops_w [ ("p", "maj") ]));
  (* Minority side cannot assemble a write quorum. *)
  (match run_one cluster ~site:3 ~ops:(ops_w [ ("p", "min") ]) with
  | Some (Site.Aborted Site.Unavailable) -> ()
  | Some Site.Committed -> Alcotest.fail "minority committed during partition"
  | Some (Site.Aborted _) | None -> ());
  Cluster.heal cluster;
  run_for cluster (Time.ms 400);
  (* After healing, a quorum read sees the majority write. *)
  check_committed (run_one cluster ~site:3 ~ops:(ops_r [ "p" ]))

let test_no_split_brain_under_partition () =
  (* Under quorum replication + quorum commit, concurrent writes on both
     sides of a partition can never both commit. *)
  let rc = Rt_replica.Replica_control.majority ~sites:5 in
  let commit = Config.Quorum_commit { commit_quorum = None; abort_quorum = None } in
  let cluster = mk ~sites:5 ~rc ~commit ~seed:11 () in
  check_committed (run_one cluster ~site:0 ~ops:(ops_w [ ("s", "0") ]));
  Cluster.partition cluster [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  run_for cluster (Time.ms 100);
  let minority = ref None and majority = ref None in
  Cluster.submit cluster ~site:0 ~ops:(ops_w [ ("s", "minority") ]) ~k:(fun o ->
      minority := Some o);
  Cluster.submit cluster ~site:2 ~ops:(ops_w [ ("s", "majority") ]) ~k:(fun o ->
      majority := Some o);
  run_for cluster (Time.sec 2);
  let committed o = o = Some Site.Committed in
  Alcotest.(check bool) "not both committed" false
    (committed !minority && committed !majority)

(* --- protocol matrix under load ---------------------------------------- *)

let test_matrix_protocol_load commit rc_name rc () =
  let config =
    { (Config.default ~sites:3 ()) with
      commit_protocol = commit;
      replica_control = rc;
      seed = 17 }
  in
  let cluster = Cluster.create config in
  let mix = { Mix.default with keys = 50; ops_per_txn = 2 } in
  Cluster.populate cluster mix;
  let clients = Client.start_fleet ~cluster ~clients:6 ~mix () in
  run_for cluster (Time.ms 500);
  List.iter Client.stop clients;
  run_for cluster (Time.ms 700);
  let stats = Client.total clients in
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s makes progress"
       (Config.commit_protocol_name commit)
       rc_name)
    true
    (stats.committed > 10);
  if rc_name <> "quorum" then
    Alcotest.(check bool) "replicas converged" true (Cluster.converged cluster)

let test_timestamp_mode_load () =
  (* The distributed timestamp-ordering scheme: progress, convergence,
     and the lost-update check under contention. *)
  let config =
    { (Config.default ~sites:3 ()) with
      concurrency = Config.Timestamp; seed = 19 }
  in
  let cluster = Cluster.create config in
  let mix = { Mix.default with keys = 40; ops_per_txn = 2; theta = 0.8 } in
  Cluster.populate cluster mix;
  let clients = Client.start_fleet ~cluster ~clients:6 ~mix () in
  run_for cluster (Time.ms 500);
  List.iter Client.stop clients;
  run_for cluster (Time.ms 200);
  let stats = Client.total clients in
  Alcotest.(check bool) "TO makes progress" true (stats.committed > 50);
  Alcotest.(check bool) "replicas converged" true (Cluster.converged cluster)

let test_timestamp_rejects_stale_write () =
  (* A younger transaction reads; an older one then tries to write the
     same key: basic TO rejects the write (rts rule). *)
  let config =
    { (Config.default ~sites:3 ()) with
      concurrency = Config.Timestamp; seed = 23 }
  in
  let cluster = Cluster.create config in
  let engine = Cluster.engine cluster in
  check_committed (run_one cluster ~site:0 ~ops:(ops_w [ ("k", "0") ]));
  let s0 = Cluster.site cluster 0 in
  (* Old transaction begins (captures its timestamp). *)
  let old_txn = Option.get (Site.begin_txn s0) in
  (* A newer transaction reads k and commits. *)
  let newer_done = ref false in
  ignore
    (Engine.schedule_after engine (Time.ms 1) (fun () ->
         Cluster.submit cluster ~site:1 ~ops:(ops_r [ "k" ]) ~k:(fun o ->
             newer_done := o = Site.Committed)));
  run_for cluster (Time.ms 100);
  Alcotest.(check bool) "newer read committed" true !newer_done;
  (* The older transaction's write must now be rejected. *)
  let result = ref None in
  Site.txn_write s0 old_txn ~key:"k" ~value:"stale" ~k:(fun r ->
      result := Some r);
  run_for cluster (Time.ms 100);
  match !result with
  | Some (Error Site.Order_conflict) -> ()
  | Some (Error r) ->
      Alcotest.failf "unexpected refusal %s" (Site.abort_reason_label r)
  | Some (Ok ()) -> Alcotest.fail "stale write accepted"
  | None -> Alcotest.fail "write never answered"

let matrix_cases =
  List.concat_map
    (fun commit ->
      [
        Alcotest.test_case
          (Printf.sprintf "%s over ROWA under load"
             (Config.commit_protocol_name commit))
          `Quick
          (test_matrix_protocol_load commit "rowa"
             Rt_replica.Replica_control.rowa);
        Alcotest.test_case
          (Printf.sprintf "%s over majority quorum under load"
             (Config.commit_protocol_name commit))
          `Quick
          (test_matrix_protocol_load commit "quorum"
             (Rt_replica.Replica_control.majority ~sites:3));
      ])
    all_commit_protocols

(* Regression: with independent per-link latencies, another
   participant's paxos phase-2a vote can reach a site before that site's
   own Vote_req.  Dropping it silently starves the instance of its F+1
   acceptor quorum and costs the ballot-0 leader a full vote-collect
   timeout round (seen as ~50ms p99 spikes in T2 at N >= 5); the site
   now stashes the early message and replays it at machine creation.
   Three slowed Vote_req links force the race deterministically: site
   1's vote reaches sites 2-4 long before their own requests do, and
   instance 1 can only assemble 3-of-5 acceptors from the stash. *)
let test_paxos_early_vote_stashed_not_dropped () =
  let cluster = mk ~sites:5 ~commit:(Config.Paxos_commit { f = None }) () in
  let net = Cluster.net cluster in
  let slow = Rt_net.Net.reliable_link (Rt_net.Latency.Fixed (Time.ms 3)) in
  List.iter
    (fun dst -> Rt_net.Net.set_link net ~src:0 ~dst slow)
    [ 2; 3; 4 ];
  let done_at = ref None in
  Cluster.submit cluster ~site:0
    ~ops:(ops_w [ ("x", "1") ])
    ~k:(fun o -> done_at := Some (o, Cluster.now cluster));
  run_for cluster (Time.sec 2);
  match !done_at with
  | None -> Alcotest.fail "transaction never completed"
  | Some (o, finished) ->
      check_committed (Some o);
      (* The slow links bound the floor at ~6ms (request + decision);
         a dropped early vote would add a >=50ms vote-collect timeout
         round before the commit could assemble its quorums. *)
      Alcotest.(check bool)
        (Printf.sprintf "commit without a timeout round (finished %.1fms)"
           (Time.to_float_ms finished))
        true
        Time.(finished < ms 20)

(* The same forced race with the early-vote stash capped at one entry:
   overflow drops the oldest stashed vote, so some acceptors assemble
   their quorum only after the leader's vote-collect timeout
   retransmits.  The cap bounds memory and may cost latency — it must
   never cost safety or liveness. *)
let test_px_early_stash_cap_overflow_still_commits () =
  let config =
    { (Config.default ~sites:5 ()) with
      commit_protocol = Config.Paxos_commit { f = None };
      px_early_stash_cap = 1;
      seed = 1 }
  in
  let cluster = Cluster.create config in
  let net = Cluster.net cluster in
  let slow = Rt_net.Net.reliable_link (Rt_net.Latency.Fixed (Time.ms 3)) in
  List.iter
    (fun dst -> Rt_net.Net.set_link net ~src:0 ~dst slow)
    [ 2; 3; 4 ];
  let outcome = run_one cluster ~site:0 ~ops:(ops_w [ ("x", "1") ]) in
  check_committed outcome;
  for s = 0 to 4 do
    Alcotest.(check (option string))
      (Printf.sprintf "replicated at %d despite dropped stash entries" s)
      (Some "1") (value_at cluster s "x")
  done

let test_px_early_stash_cap_validated () =
  Alcotest.check_raises "cap must be positive"
    (Invalid_argument "Config: px_early_stash_cap must be positive") (fun () ->
      Config.validate
        { (Config.default ~sites:3 ()) with px_early_stash_cap = 0 })

let commit_cases =
  List.map
    (fun commit ->
      Alcotest.test_case
        (Printf.sprintf "%s commit replicates"
           (Config.commit_protocol_name commit))
        `Quick
        (test_commit_replicates commit))
    all_commit_protocols

let () =
  Alcotest.run "core"
    [
      ("commit", commit_cases);
      ( "basics",
        [
          Alcotest.test_case "paxos early vote stashed, not dropped" `Quick
            test_paxos_early_vote_stashed_not_dropped;
          Alcotest.test_case "early-vote stash cap overflow still commits"
            `Quick test_px_early_stash_cap_overflow_still_commits;
          Alcotest.test_case "early-vote stash cap validated" `Quick
            test_px_early_stash_cap_validated;
          Alcotest.test_case "read after write" `Quick test_read_after_write;
          Alcotest.test_case "sequential transactions" `Quick
            test_sequential_transactions;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "disjoint concurrent commits" `Quick
            test_concurrent_disjoint_commit;
          Alcotest.test_case "conflicting writes serialize" `Quick
            test_conflicting_writes_serialize;
          Alcotest.test_case "simultaneous conflicting writes stay consistent"
            `Quick test_conflicting_writes_simultaneous;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crash + recover (available copies)" `Quick
            test_crash_and_recover_available_copies;
          Alcotest.test_case "ROWA unavailable when site down" `Quick
            test_rowa_blocks_when_site_down;
          Alcotest.test_case "quorum tolerates minority crash" `Quick
            test_quorum_tolerates_minority_crash;
          Alcotest.test_case "coordinator crash + recovery" `Quick
            test_coordinator_crash_recovery_2pc;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "majority side continues" `Quick
            test_partition_quorum_majority_side_continues;
          Alcotest.test_case "no split brain" `Quick
            test_no_split_brain_under_partition;
        ] );
      ("matrix", matrix_cases);
      ( "timestamp-ordering",
        [
          Alcotest.test_case "TO under load" `Quick test_timestamp_mode_load;
          Alcotest.test_case "TO rejects stale write" `Quick
            test_timestamp_rejects_stale_write;
        ] );
    ]
