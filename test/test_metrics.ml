(* Tests for the metrics library: exact samples, bucketed histograms,
   counters, and table rendering. *)

open Rt_metrics

(* --- Sample ----------------------------------------------------------- *)

let test_sample_basics () =
  let s = Sample.create () in
  Alcotest.(check bool) "empty" true (Sample.is_empty s);
  List.iter (Sample.add s) [ 5.; 1.; 3.; 2.; 4. ];
  Alcotest.(check int) "count" 5 (Sample.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Sample.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Sample.min s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Sample.max s);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Sample.percentile s 50.);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Sample.percentile s 100.);
  Alcotest.(check (float 1e-9)) "p1 = min" 1.0 (Sample.percentile s 1.)

let test_sample_add_after_percentile () =
  (* Percentile sorts internally; later adds must still be seen. *)
  let s = Sample.create () in
  Sample.add s 10.;
  ignore (Sample.percentile s 50.);
  Sample.add s 1.;
  Alcotest.(check (float 1e-9)) "new min visible" 1.0 (Sample.min s)

let test_sample_merge_clear () =
  let a = Sample.create () and b = Sample.create () in
  Sample.add a 1.;
  Sample.add b 2.;
  let m = Sample.merge a b in
  Alcotest.(check int) "merged count" 2 (Sample.count m);
  Alcotest.(check (float 1e-9)) "merged total" 3.0 (Sample.total m);
  Sample.clear a;
  Alcotest.(check bool) "cleared" true (Sample.is_empty a)

let test_sample_stddev () =
  let s = Sample.create () in
  List.iter (Sample.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check (float 1e-9)) "known stddev" 2.0 (Sample.stddev s)

let prop_sample_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Sample.create () in
      List.iter (Sample.add s) xs;
      let ps = [ 1.; 25.; 50.; 75.; 90.; 99.; 100. ] in
      let vals = List.map (Sample.percentile s) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vals)

(* --- Histogram --------------------------------------------------------- *)

let test_histogram_accuracy () =
  let h = Histogram.create ~precision:0.01 () in
  let s = Sample.create () in
  let rng = Rt_sim.Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Rt_sim.Rng.exponential rng ~mean:10.0 in
    Histogram.add h v;
    Sample.add s v
  done;
  Alcotest.(check int) "counts agree" (Sample.count s) (Histogram.count h);
  List.iter
    (fun p ->
      let exact = Sample.percentile s p and approx = Histogram.percentile h p in
      let err = abs_float (approx -. exact) /. exact in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within 2%%" p)
        true (err < 0.02))
    [ 50.; 90.; 99. ]

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 1.;
  Histogram.add b 100.;
  let m = Histogram.merge a b in
  Alcotest.(check int) "count" 2 (Histogram.count m);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Histogram.min m);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Histogram.max m);
  Alcotest.check_raises "mismatched precision"
    (Invalid_argument "Histogram.merge: mismatched precision") (fun () ->
      ignore (Histogram.merge a (Histogram.create ~precision:0.5 ())))

let test_histogram_zero () =
  (* Zero is a legal sample: it lands in the underflow bucket, whose
     representative value is 0, so percentiles agree with min/max. *)
  let h = Histogram.create () in
  Histogram.add h 0.;
  Histogram.add h 10.;
  Alcotest.(check int) "both counted" 2 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "min" 0. (Histogram.min h);
  Alcotest.(check (float 1e-9)) "p1 = min" 0. (Histogram.percentile h 1.)

let test_histogram_rejects_negative () =
  (* Negative samples used to collapse into the underflow bucket and
     report as 0 in percentile queries while min/max kept the real
     value; they are rejected now instead of lying. *)
  let h = Histogram.create () in
  let reject x =
    Alcotest.check_raises
      (Printf.sprintf "add %f rejected" x)
      (Invalid_argument "Histogram.add: sample must be a non-negative number")
      (fun () -> Histogram.add h x)
  in
  reject (-5.);
  reject Float.nan;
  Alcotest.(check int) "nothing recorded" 0 (Histogram.count h)

let test_histogram_single_sample () =
  let h = Histogram.create () in
  Histogram.add h 7.;
  Alcotest.(check int) "count" 1 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "min" 7. (Histogram.min h);
  Alcotest.(check (float 1e-9)) "max" 7. (Histogram.max h);
  (* With one sample every percentile is that sample (clamped into the
     observed range, so bucket-midpoint error cannot leak out). *)
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f" p)
        7. (Histogram.percentile h p))
    [ 0.; 1.; 50.; 100. ]

(* --- Counter ------------------------------------------------------------ *)

let test_counter () =
  let c = Counter.create () in
  Alcotest.(check int) "default zero" 0 (Counter.get c "x");
  Counter.incr c "x";
  Counter.incr ~by:5 c "x";
  Counter.incr c "y";
  Alcotest.(check int) "x" 6 (Counter.get c "x");
  Alcotest.(check (list string)) "names sorted" [ "x"; "y" ] (Counter.names c);
  Counter.set c "y" 42;
  Alcotest.(check (list (pair string int))) "assoc" [ ("x", 6); ("y", 42) ]
    (Counter.to_assoc c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.get c "x")

(* --- Table --------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "header present" true
    (String.length (List.nth lines 0) > 0);
  (* All non-empty lines share the same width. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  let w0 = List.hd widths in
  Alcotest.(check bool) "aligned" true (List.for_all (fun w -> w = w0) widths);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_cells () =
  Alcotest.(check string) "float cell" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "decimals" "3.1416"
    (Table.cell_f ~decimals:4 3.14159);
  Alcotest.(check string) "int cell" "42" (Table.cell_i 42)

let () =
  Alcotest.run "metrics"
    [
      ( "sample",
        [
          Alcotest.test_case "basics" `Quick test_sample_basics;
          Alcotest.test_case "add after percentile" `Quick
            test_sample_add_after_percentile;
          Alcotest.test_case "merge/clear" `Quick test_sample_merge_clear;
          Alcotest.test_case "stddev" `Quick test_sample_stddev;
          QCheck_alcotest.to_alcotest prop_sample_percentile_monotone;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "accuracy" `Quick test_histogram_accuracy;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "zero sample" `Quick test_histogram_zero;
          Alcotest.test_case "rejects negative" `Quick
            test_histogram_rejects_negative;
          Alcotest.test_case "single sample" `Quick test_histogram_single_sample;
        ] );
      ("counter", [ Alcotest.test_case "counter" `Quick test_counter ]);
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
    ]
