(* Benchmark harness.

   Running this executable regenerates every table/figure of the
   reconstructed evaluation (the simulation results the paper-style
   write-up reports), then runs a Bechamel micro-benchmark suite with one
   measurement per experiment, timing the core code path that experiment
   exercises (wall-clock cost of the simulator itself, not simulated
   time). *)

open Bechamel
open Toolkit
module Experiment = Rt_core.Experiment
module Config = Rt_core.Config
module Cluster = Rt_core.Cluster
module Client = Rt_core.Client
module Site = Rt_core.Site
module Mix = Rt_workload.Mix
module Sandbox = Rt_commit.Sandbox
module Two_pc = Rt_commit.Two_pc
module Placement = Rt_placement.Placement
module Shard_map = Rt_placement.Shard_map
module Sample = Rt_metrics.Sample
module Counter = Rt_metrics.Counter
module T = Rt_sim.Time

(* ------------------------------------------------------------------ *)
(* Experiment tables                                                    *)
(* ------------------------------------------------------------------ *)

let print_tables () =
  List.iter
    (fun (spec : Experiment.spec) ->
      Printf.printf "== %s: %s ==\n\n" spec.id spec.title;
      (* rt_lint: allow no-wall-clock -- host-side progress report, outside any simulation *)
      let t0 = Unix.gettimeofday () in
      Rt_metrics.Table.print (spec.table ());
      (* rt_lint: allow no-wall-clock -- host-side progress report, outside any simulation *)
      Printf.printf "\n(generated in %.1fs)\n\n%!" (Unix.gettimeofday () -. t0))
    Experiment.all

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the per-experiment core code path         *)
(* ------------------------------------------------------------------ *)

let one_sandbox_commit proto () =
  let o = Sandbox.run_fifo ~proto ~sites:3 ~votes:[| true; true; true |] () in
  assert o.agreement

let one_cluster_txn rc () =
  let config =
    { (Config.default ~sites:3 ()) with replica_control = rc; seed = 1 }
  in
  let cluster = Cluster.create config in
  let ok = ref false in
  Cluster.submit cluster ~site:0
    ~ops:[ Mix.Write ("k", "v") ]
    ~k:(fun o -> ok := o = Site.Committed);
  Cluster.run ~until:(T.ms 100) cluster;
  assert !ok

let availability_sweep () =
  let v = Rt_quorum.Votes.majority ~sites:7 in
  let acc = ref 0. in
  for p10 = 1 to 9 do
    acc :=
      !acc
      +. Rt_quorum.Availability.txn_availability v ~p:(float_of_int p10 /. 10.)
  done;
  !acc

let recovery_1k =
  let log =
    List.concat
      (List.init 334 (fun i ->
           let t =
             Rt_types.Ids.Txn_id.make ~origin:0 ~seq:i ~start_ts:(T.us i)
           in
           [
             Rt_storage.Log_record.Update
               { txn = t; key = Printf.sprintf "k%d" (i mod 100); value = "v";
                 version = i; undo = None };
             Rt_storage.Log_record.Prepared { txn = t; participants = [ 0 ] };
             Rt_storage.Log_record.Commit t;
           ]))
  in
  fun () ->
    let kv = Rt_storage.Kv.create () in
    (Rt_storage.Recovery.recover kv log).redone

let one_local_txn scheme () =
  let r =
    Rt_cc.Workbench.run ~seed:1 ~scheme ~clients:1
      ~mix:{ Mix.default with keys = 16; ops_per_txn = 4 }
      ~duration:(T.us 200) ()
  in
  r.committed

let engine_churn () =
  let e = Rt_sim.Engine.create () in
  for i = 1 to 500 do
    ignore (Rt_sim.Engine.schedule_after e (T.us i) (fun () -> ()))
  done;
  Rt_sim.Engine.run e;
  Rt_sim.Engine.processed e

let quorum_planning () =
  let rc = Rt_replica.Replica_control.majority ~sites:7 in
  let replicas = List.init 7 (fun i -> i) in
  let plans = ref 0 in
  for self = 0 to 6 do
    (match
       Rt_replica.Replica_control.read_plan rc ~self ~up:(fun _ -> true)
         ~replicas
     with
    | Some _ -> incr plans
    | None -> ());
    match
      Rt_replica.Replica_control.write_plan rc ~self ~up:(fun s -> s <> 0)
        ~replicas
    with
    | Some _ -> incr plans
    | None -> ()
  done;
  !plans

let sandbox_crash_run () =
  let o =
    Sandbox.run ~seed:3 ~crashes:[ (0, 10) ] ~max_steps:1500
      ~proto:Sandbox.P_three_pc ~sites:3 ~votes:[| true; true; true |] ()
  in
  assert o.agreement

let min_read_sets () =
  let v =
    Rt_quorum.Votes.make ~votes:[| 3; 1; 1; 1; 1 |] ~read_quorum:3
      ~write_quorum:5
  in
  let n = ref 0 in
  for down = 0 to 4 do
    match Rt_quorum.Votes.min_read_set v ~up:(fun s -> s <> down) with
    | Some set -> n := !n + List.length set
    | None -> ()
  done;
  !n

let lock_cycle () =
  let t = Rt_lock.Lock_table.create () in
  let txn i = Rt_types.Ids.Txn_id.make ~origin:0 ~seq:i ~start_ts:(T.us i) in
  for i = 1 to 16 do
    let tx = txn i in
    for k = 0 to 3 do
      ignore
        (Rt_lock.Lock_table.acquire t ~txn:tx
           ~key:(Printf.sprintf "k%d" ((i + k) mod 8))
           ~mode:(if k = 0 then Rt_lock.Lock_table.Exclusive
                  else Rt_lock.Lock_table.Shared)
           ~on_grant:(fun () -> ()))
    done;
    ignore (Rt_lock.Lock_table.detect_deadlock t)
  done;
  for i = 1 to 16 do
    Rt_lock.Lock_table.release_all t ~txn:(txn i)
  done

let partitioned_send () =
  let e = Rt_sim.Engine.create () in
  let net =
    Rt_net.Net.create e ~nodes:5
      ~default:(Rt_net.Net.reliable_link (Rt_net.Latency.Fixed (T.us 10)))
  in
  let got = ref 0 in
  for i = 0 to 4 do
    Rt_net.Net.register net i (fun ~src:_ _ -> incr got)
  done;
  Rt_net.Partition.split (Rt_net.Net.partition net) [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  for src = 0 to 4 do
    Rt_net.Net.broadcast net ~src ()
  done;
  Rt_sim.Engine.run e;
  !got

let tests =
  Test.make_grouped ~name:"experiments"
    [
      Test.make ~name:"T1 sandbox 2PC commit round"
        (Staged.stage
           (one_sandbox_commit (Sandbox.P_two_pc Two_pc.Presumed_abort)));
      Test.make ~name:"T2 cluster update txn (ROWA)"
        (Staged.stage (fun () ->
             one_cluster_txn Rt_replica.Replica_control.rowa ()));
      Test.make ~name:"T3 availability closed forms"
        (Staged.stage availability_sweep);
      Test.make ~name:"T4 cluster update txn (majority)"
        (Staged.stage (fun () ->
             one_cluster_txn (Rt_replica.Replica_control.majority ~sites:3) ()));
      Test.make ~name:"T5 recovery of 1k-record log" (Staged.stage recovery_1k);
      Test.make ~name:"T6 local 2PL transactions"
        (Staged.stage (fun () -> one_local_txn Rt_cc.Workbench.Two_pl ()));
      Test.make ~name:"F1 engine event churn" (Staged.stage engine_churn);
      Test.make ~name:"F2 quorum plan computation"
        (Staged.stage quorum_planning);
      Test.make ~name:"F3 local OCC transactions"
        (Staged.stage (fun () -> one_local_txn Rt_cc.Workbench.Optimistic ()));
      Test.make ~name:"F4 sandbox 3PC with crash"
        (Staged.stage sandbox_crash_run);
      Test.make ~name:"F5 sandbox QC commit round"
        (Staged.stage
           (one_sandbox_commit
              (Sandbox.P_quorum { commit_quorum = 2; abort_quorum = 2 })));
      Test.make ~name:"F6 weighted min read sets" (Staged.stage min_read_sets);
      Test.make ~name:"F7 lock acquire/detect/release" (Staged.stage lock_cycle);
      Test.make ~name:"F8 partitioned broadcast" (Staged.stage partitioned_send);
      Test.make ~name:"A1 WAL group-commit cycle"
        (Staged.stage (fun () ->
             let e = Rt_sim.Engine.create () in
             let wal = Rt_storage.Wal.create e ~force_latency:(T.us 50) () in
             for i = 1 to 32 do
               ignore (Rt_storage.Wal.append wal i);
               Rt_storage.Wal.force wal (fun () -> ())
             done;
             Rt_sim.Engine.run e;
             Rt_storage.Wal.force_count wal));
      Test.make ~name:"A2 read-only 2PC round"
        (Staged.stage (fun () ->
             let o =
               Sandbox.run ~read_only:[| false; true; true |]
                 ~proto:(Sandbox.P_two_pc Two_pc.Presumed_abort) ~sites:3
                 ~votes:[| true; true; true |] ()
             in
             assert o.agreement));
      Test.make ~name:"A3 wound-wait transactions"
        (Staged.stage (fun () ->
             one_local_txn Rt_cc.Workbench.Two_pl_wound_wait ()));
      Test.make ~name:"A4 lock blocking query"
        (Staged.stage (fun () ->
             let t = Rt_lock.Lock_table.create () in
             let txn i =
               Rt_types.Ids.Txn_id.make ~origin:0 ~seq:i ~start_ts:(T.us i)
             in
             for i = 1 to 8 do
               ignore
                 (Rt_lock.Lock_table.acquire t ~txn:(txn i) ~key:"hot"
                    ~mode:Rt_lock.Lock_table.Exclusive ~on_grant:(fun () -> ()))
             done;
             let n =
               List.length (Rt_lock.Lock_table.blocking t ~txn:(txn 8))
             in
             for i = 1 to 8 do
               Rt_lock.Lock_table.release_all t ~txn:(txn i)
             done;
             n));
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "== Bechamel micro-benchmarks (ns per run) ==\n\n";
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Printf.printf "%-45s %12.0f ns\n" name t
      | Some [] | None -> Printf.printf "%-45s %12s\n" name "n/a")
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* --json: machine-readable metrics snapshot                            *)
(* ------------------------------------------------------------------ *)

(* One deterministic cluster probe per commit protocol × placement:
   throughput, latency, and message counts from the simulation (virtual
   time, so the numbers are reproducible bit-for-bit across hosts and
   runs, unlike the bechamel wall-clock suite). *)

type probe = {
  probe : string;
  protocol : string;
  placement_name : string;
  throughput_txn_s : float;
  mean_latency_ms : float;
  p99_latency_ms : float;
  msgs_per_commit : float;
      (* Wire envelopes per commit: the number of scheduled network
         deliveries, which per-link batching amortizes.  Without batching
         every message is its own envelope. *)
  forces_per_commit : float;
  wal_torn : int;
      (* Device cycles a crash left partially durable, summed over
         sites.  The bench never crashes, so this is always 0 — it is in
         the snapshot so the perf gate watches the counter's plumbing,
         and bench_diff tolerates baselines that predate it. *)
  committed : int;
  aborted : int;
}

let json_protocols =
  [
    ("2PC-PrN", Config.Two_phase Two_pc.Presumed_nothing);
    ("2PC-PrA", Config.Two_phase Two_pc.Presumed_abort);
    ("2PC-PrC", Config.Two_phase Two_pc.Presumed_commit);
    ("3PC", Config.Three_phase);
    ("QC", Config.Quorum_commit { commit_quorum = None; abort_quorum = None });
    ("Paxos", Config.Paxos_commit { f = None });
  ]

let json_placements =
  [
    ("full", None);
    ( "sharded-2x3",
      Some
        (Placement.create ~map:(Shard_map.hash ~shards:2) ~sites:5 ~degree:3
           ()) );
  ]

(* The group-commit / batching windows the optimized ("+gcb") probe arms
   use.  Small relative to the 100µs mean link latency and the 50µs force,
   so the added queueing delay is bounded while concurrent transactions
   share flushes and envelopes. *)
let gcb_tune (c : Config.t) =
  { c with group_commit_window = T.us 75; batch_window = Some (T.us 150) }

(* Per-envelope egress cost for every probe arm: the sender's port is
   busy for this long per transmission, the per-message overhead that
   batching amortizes.  Applied before [tune] so classical and +gcb arms
   run on the same platform model. *)
let probe_overhead = T.us 80

let run_probe ?(clients = 8) ?(tune = Fun.id) ~name
    ~protocol:(pname, commit_protocol) ~placement:(plname, placement) () =
  let config =
    let base = Config.default ~sites:5 () in
    tune
      { base with commit_protocol; placement; seed = 97;
        link = { base.link with overhead = probe_overhead } }
  in
  let mix =
    { Mix.default with keys = 200; ops_per_txn = 2; read_fraction = 0.5 }
  in
  let cluster = Cluster.create config in
  Cluster.populate cluster mix;
  let fleet =
    Client.start_fleet ~cluster ~clients ~mix ~route_by_shard:true ()
  in
  let duration = T.ms 200 in
  Cluster.run ~until:duration cluster;
  List.iter Client.stop fleet;
  Cluster.run ~until:(T.add duration (T.ms 100)) cluster;
  let stats = Client.total fleet in
  let lat = Cluster.latencies cluster in
  let forces =
    Array.fold_left
      (fun acc site -> acc + Site.wal_forces site)
      0 (Cluster.sites cluster)
  in
  let envelopes = (Cluster.net_stats cluster).envelopes in
  let per_commit x =
    if stats.committed = 0 then 0.
    else float_of_int x /. float_of_int stats.committed
  in
  {
    probe = name;
    protocol = pname;
    placement_name = plname;
    throughput_txn_s =
      float_of_int stats.committed /. T.to_float_s duration;
    mean_latency_ms = Sample.mean lat *. 1e3;
    p99_latency_ms = Sample.percentile lat 99. *. 1e3;
    msgs_per_commit = per_commit envelopes;
    forces_per_commit = per_commit forces;
    wal_torn =
      Array.fold_left
        (fun acc site -> acc + (Site.wal_stats site).Rt_storage.Wal.st_torn)
        0 (Cluster.sites cluster);
    committed = stats.committed;
    aborted = stats.aborted;
  }

(* Hand-rolled printer so the field order is part of the contract (no
   dependency on a JSON library's serialization order). *)
let probe_to_json b p =
  Buffer.add_string b
    (Printf.sprintf
       "    {\"probe\": %S, \"protocol\": %S, \"placement\": %S, \
        \"throughput_txn_s\": %.1f, \"mean_latency_ms\": %.3f, \
        \"p99_latency_ms\": %.3f, \"msgs_per_commit\": %.2f, \
        \"forces_per_commit\": %.2f, \"wal_torn\": %d, \"committed\": %d, \
        \"aborted\": %d}"
       p.probe p.protocol p.placement_name p.throughput_txn_s
       p.mean_latency_ms p.p99_latency_ms p.msgs_per_commit
       p.forces_per_commit p.wal_torn p.committed p.aborted)

(* The next index after the highest existing BENCH_<n>.json — NOT the
   first free slot from 0, which would silently shadow a newer artifact
   behind a stale low-numbered one. *)
let next_json_path () =
  let next =
    Array.fold_left
      (fun acc name ->
        match Scanf.sscanf_opt name "BENCH_%d.json%!" (fun n -> n) with
        | Some n -> max acc (n + 1)
        | None -> acc)
      0
      (Sys.readdir ".")
  in
  Printf.sprintf "BENCH_%d.json" next

let run_json () =
  let probes =
    List.concat_map
      (fun protocol ->
        List.concat_map
          (fun ((plname, _) as placement) ->
            [
              (* Classical per-transaction forces and per-message
                 envelopes... *)
              run_probe ~name:(Printf.sprintf "%s/%s" (fst protocol) plname)
                ~protocol ~placement ();
              (* ...vs WAL group commit + link batching at the same
                 load. *)
              run_probe ~tune:gcb_tune
                ~name:(Printf.sprintf "%s/%s+gcb" (fst protocol) plname)
                ~protocol ~placement ();
            ]
            @
            (* High-concurrency full-replication arms: 32 closed-loop
               clients pile onto the per-link FIFO and the force device,
               which is where coalescing pays. *)
            (if plname = "full" then
               [
                 run_probe ~clients:32
                   ~name:(Printf.sprintf "%s/full@32" (fst protocol))
                   ~protocol ~placement ();
                 run_probe ~clients:32 ~tune:gcb_tune
                   ~name:(Printf.sprintf "%s/full+gcb@32" (fst protocol))
                   ~protocol ~placement ();
               ]
             else []))
          json_placements)
      json_protocols
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": 1,\n  \"probes\": [\n";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ",\n";
      probe_to_json b p)
    probes;
  Buffer.add_string b "\n  ]\n}\n";
  let path = next_json_path () in
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "wrote %s (%d probes)\n" path (List.length probes)

let () =
  if Array.exists (fun a -> a = "--json") Sys.argv then run_json ()
  else begin
    print_tables ();
    run_benchmarks ()
  end
