(* Command-line driver for the disk-fault nemesis campaign: torn WAL
   writes, checkpoint corruption, and recovery-time re-crashes composed
   across the protocol × placement matrix, audited by the shared
   invariant battery.  Exit code = number of audit violations (0 =
   clean) so CI can gate on it; output is byte-identical per seed.

     dune exec bin/disk_nemesis.exe -- --help                       *)

open Cmdliner
module Disk = Rt_nemesis.Disk
module Campaign = Rt_nemesis.Campaign
module Time = Rt_sim.Time

let run seed sites clients duration_ms =
  let results =
    Disk.run ~seed ~sites ~clients ~duration:(Time.ms duration_ms) ()
  in
  print_string (Disk.render results);
  let violations = Campaign.total_violations results in
  if violations = 0 then `Ok () else exit (min 125 violations)

let seed_arg =
  let doc = "DES seed; output is byte-identical for a given seed." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let sites_arg =
  Arg.(value & opt int 5 & info [ "sites" ] ~doc:"Number of replica sites.")

let clients_arg =
  Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Closed-loop clients.")

let duration_arg =
  Arg.(
    value & opt int 300
    & info [ "duration-ms" ] ~doc:"Fault window per run (simulated ms).")

let cmd =
  let doc = "Disk-fault campaigns: torn writes, corrupt checkpoints, re-crashes" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Each run drives a cluster with a client fleet while a disk-fault \
         scenario injects torn WAL device cycles, corrupted checkpoint \
         snapshots, and re-crashes during recovery; afterwards every site \
         recovers and the shared audit checks agreement, durability, \
         fork-freedom, lock/timer hygiene, bounded termination, and the \
         storage identity started = completed + lost + torn.  See \
         docs/RECOVERY.md (Storage faults).";
    ]
  in
  Cmd.v
    (Cmd.info "disk_nemesis" ~version:"1.0" ~doc ~man)
    Term.(
      ret (const run $ seed_arg $ sites_arg $ clients_arg $ duration_arg))

let () = exit (Cmd.eval cmd)
