(* Command-line driver for the reconstructed evaluation: run any table or
   figure of the experiment suite individually, or all of them. *)

open Cmdliner
module Experiment = Rt_core.Experiment

let print_spec (spec : Experiment.spec) =
  Printf.printf "== %s: %s ==\n\n" spec.id spec.title;
  (* rt_lint: allow no-wall-clock -- host-side progress report, outside any simulation *)
  let t0 = Unix.gettimeofday () in
  let table = spec.table () in
  Rt_metrics.Table.print table;
  (* rt_lint: allow no-wall-clock -- host-side progress report, outside any simulation *)
  Printf.printf "\n(generated in %.1fs)\n\n%!" (Unix.gettimeofday () -. t0)

let run_ids ids =
  match ids with
  | [] ->
      List.iter print_spec Experiment.all;
      `Ok ()
  | ids -> (
      let missing =
        List.filter (fun id -> Experiment.find id = None) ids
      in
      match missing with
      | [] ->
          List.iter
            (fun id ->
              match Experiment.find id with
              | Some spec -> print_spec spec
              | None -> assert false)
            ids;
          `Ok ()
      | m ->
          `Error
            (false, Printf.sprintf "unknown experiment id(s): %s"
                      (String.concat ", " m)))

let list_experiments () =
  List.iter
    (fun (s : Experiment.spec) -> Printf.printf "%-4s %s\n" s.id s.title)
    Experiment.all;
  `Ok ()

let ids_arg =
  let doc =
    "Experiment identifiers (T1..T6, F1..F8, case-insensitive).  With no \
     ids, every experiment runs in order."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let list_flag =
  let doc = "List available experiments and exit." in
  Arg.(value & flag & info [ "l"; "list" ] ~doc)

let main list_it ids = if list_it then list_experiments () else run_ids ids

let cmd =
  let doc =
    "Regenerate the tables and figures of the replicated-transactions \
     evaluation"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Each experiment runs the corresponding simulation (or closed-form \
         analysis) with fixed seeds and prints the table the paper-style \
         evaluation reports.  See DESIGN.md for the experiment index and \
         EXPERIMENTS.md for expected shapes.";
    ]
  in
  Cmd.v
    (Cmd.info "experiments" ~version:"1.0" ~doc ~man)
    Term.(ret (const main $ list_flag $ ids_arg))

let () = exit (Cmd.eval cmd)
