(* Soak/torture runner: drive a configurable cluster through a workload
   with random crashes (and optionally a partition episode), then audit
   the invariants — no forked keys, no stuck participants, replicas
   converged where the protocol promises it.

     dune exec bin/soak.exe -- --help                        *)

open Cmdliner
open Rt_core
module Mix = Rt_workload.Mix
module Time = Rt_sim.Time

let commit_protocol_of_string = function
  | "2pc-prn" -> Ok (Config.Two_phase Rt_commit.Two_pc.Presumed_nothing)
  | "2pc-pra" | "2pc" -> Ok (Config.Two_phase Rt_commit.Two_pc.Presumed_abort)
  | "2pc-prc" -> Ok (Config.Two_phase Rt_commit.Two_pc.Presumed_commit)
  | "3pc" -> Ok Config.Three_phase
  | "qc" ->
      Ok (Config.Quorum_commit { commit_quorum = None; abort_quorum = None })
  | "paxos" -> Ok (Config.Paxos_commit { f = None })
  | s -> Error (Printf.sprintf "unknown commit protocol %S" s)

let rc_of_string ~sites = function
  | "rowa" -> Ok Rt_replica.Replica_control.rowa
  | "rowa-a" | "available-copies" -> Ok Rt_replica.Replica_control.available_copies
  | "quorum" | "majority" -> Ok (Rt_replica.Replica_control.majority ~sites)
  | "primary" -> Ok (Rt_replica.Replica_control.primary 0)
  | s -> Error (Printf.sprintf "unknown replica control %S" s)

let cc_of_string = function
  | "2pl" | "locking" -> Ok Config.Locking
  | "to" | "timestamp" -> Ok Config.Timestamp
  | s -> Error (Printf.sprintf "unknown concurrency control %S" s)

let run sites protocol rc cc clients duration_ms mttf_ms mttr_ms partition
    read_fraction theta keys probes seed =
  let ( let* ) = Result.bind in
  let result =
    let* commit_protocol = commit_protocol_of_string protocol in
    let* replica_control = rc_of_string ~sites rc in
    let* concurrency = cc_of_string cc in
    Ok (commit_protocol, replica_control, concurrency)
  in
  match result with
  | Error e -> `Error (false, e)
  | Ok (commit_protocol, replica_control, concurrency) ->
      let config =
        { (Config.default ~sites ()) with
          commit_protocol;
          replica_control;
          concurrency;
          probe_deadlocks = probes;
          checkpoint_every = 50;
          seed }
      in
      let cluster = Cluster.create config in
      let mix =
        { Mix.default with keys; read_fraction; theta; ops_per_txn = 3 }
      in
      Cluster.populate cluster mix;
      let fleet = Client.start_fleet ~cluster ~clients ~mix () in
      let duration = Time.ms duration_ms in
      let proc =
        if mttf_ms > 0 then
          Some
            (Failure.random_crashes cluster ~mttf:(Time.ms mttf_ms)
               ~mttr:(Time.ms mttr_ms) ())
        else None
      in
      if partition then begin
        let mid = sites / 2 in
        let left = List.init mid (fun i -> i) in
        let right = List.init (sites - mid) (fun i -> mid + i) in
        Failure.schedule cluster
          [
            (duration / 3, Failure.Partition [ left; right ]);
            (2 * duration / 3, Failure.Heal);
          ]
      end;
      Cluster.run ~until:duration cluster;
      Option.iter Failure.stop proc;
      List.iter Client.stop fleet;
      (* Recover any still-down site and drain. *)
      Array.iteri
        (fun i s -> if not (Site.is_up s) then Cluster.recover_site cluster i)
        (Cluster.sites cluster);
      Cluster.run ~until:(Time.add duration (Time.sec 2)) cluster;

      (* ---- report ---- *)
      let stats = Client.total fleet in
      let c = Cluster.counters cluster in
      let lat = Cluster.latencies cluster in
      let net = Cluster.net_stats cluster in
      Printf.printf
        "configuration: %d sites, %s over %s, %s CC, %d clients, %dms%s%s\n"
        sites
        (Config.commit_protocol_name commit_protocol)
        (Rt_replica.Replica_control.name replica_control)
        (Config.concurrency_name concurrency)
        clients duration_ms
        (if mttf_ms > 0 then Printf.sprintf ", MTTF %dms" mttf_ms else "")
        (if partition then ", partition episode" else "");
      Printf.printf "transactions: %d committed, %d aborted (%.1f%% success)\n"
        stats.committed stats.aborted
        (if stats.committed + stats.aborted = 0 then 0.
         else
           100.
           *. float_of_int stats.committed
           /. float_of_int (stats.committed + stats.aborted));
      if Rt_metrics.Sample.count lat > 0 then
        Printf.printf "latency: mean %.2fms  p50 %.2fms  p99 %.2fms\n"
          (Rt_metrics.Sample.mean lat *. 1e3)
          (Rt_metrics.Sample.percentile lat 50. *. 1e3)
          (Rt_metrics.Sample.percentile lat 99. *. 1e3);
      Printf.printf
        "network: %d sent, %d delivered, %d dropped (%d link, %d partition)\n"
        net.sent net.delivered
        (Rt_net.Net.Stats.dropped net)
        net.dropped_link net.dropped_partition;
      List.iter
        (fun name ->
          let v = Rt_metrics.Counter.get c name in
          if v > 0 then Printf.printf "%-22s %d\n" name v)
        [
          "deadlock_victims"; "lock_timeouts"; "probe_deadlocks"; "crashes";
          "recoveries"; "catchups"; "checkpoints"; "blocked_reports";
          "readonly_releases"; "validation_vetoes"; "order_conflicts";
        ];

      (* ---- audit (shared battery from Rt_core.Audit) ---- *)
      let faulty = mttf_ms > 0 || partition in
      let hard =
        Audit.fork_freedom cluster
        @ Audit.agreement cluster
        @ List.filter
            (fun { Audit.inv; _ } ->
              (* Locks/timers can legitimately be outstanding for
                 transactions still in flight when the drain window
                 closes; the crash sweep checks those with a controlled
                 workload.  Here we insist on serving sites and resolved
                 participants. *)
              inv = "recovery" || inv = "termination")
            (Audit.site_hygiene cluster)
      in
      let convergence_failures =
        match replica_control with
        | Rt_replica.Replica_control.Quorum _ -> []
        | _ -> Audit.convergence cluster
      in
      let hard =
        if convergence_failures <> [] && not faulty then
          hard @ [ { Audit.inv = "durability"; detail = "replicas did not converge" } ]
        else hard
      in
      if convergence_failures <> [] && faulty then
        (* Available-copies style protocols assume accurate failure
           detection; detector lag acts like a brief partition, so
           residual staleness after a failure-heavy run is the
           documented behaviour, not a bug (see EXPERIMENTS.md). *)
        Printf.printf
          "note: replicas not fully converged (expected for \
           ROWA-A-style protocols under failures/partitions)\n";
      if hard = [] then begin
        Printf.printf "audit: OK\n";
        `Ok ()
      end
      else begin
        List.iter
          (fun f ->
            Printf.printf "audit FAILURE: %s\n"
              (Format.asprintf "%a" Audit.pp_violation f))
          hard;
        `Error (false, "invariant violations detected")
      end

let cmd =
  let sites =
    Arg.(value & opt int 3 & info [ "sites" ] ~doc:"Number of replica sites.")
  in
  let protocol =
    Arg.(
      value & opt string "2pc-pra"
      & info [ "protocol" ]
          ~doc:"Commit protocol: 2pc-prn, 2pc-pra, 2pc-prc, 3pc, qc, paxos.")
  in
  let rc =
    Arg.(
      value & opt string "rowa-a"
      & info [ "rc" ]
          ~doc:"Replica control: rowa, rowa-a, quorum, primary.")
  in
  let cc =
    Arg.(
      value & opt string "2pl"
      & info [ "cc" ] ~doc:"Concurrency control at the replicas: 2pl, to.")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Closed-loop clients.")
  in
  let duration =
    Arg.(
      value & opt int 2000
      & info [ "duration-ms" ] ~doc:"Workload duration (simulated ms).")
  in
  let mttf =
    Arg.(
      value & opt int 500
      & info [ "mttf-ms" ]
          ~doc:"Mean time to failure per site, simulated ms (0 = no crashes).")
  in
  let mttr =
    Arg.(
      value & opt int 100
      & info [ "mttr-ms" ] ~doc:"Mean time to repair, simulated ms.")
  in
  let partition =
    Arg.(
      value & flag
      & info [ "partition" ]
          ~doc:"Inject a network partition for the middle third of the run.")
  in
  let read_fraction =
    Arg.(value & opt float 0.5 & info [ "read-fraction" ] ~doc:"Reads per op.")
  in
  let theta =
    Arg.(value & opt float 0.8 & info [ "theta" ] ~doc:"Zipf skew.")
  in
  let keys = Arg.(value & opt int 200 & info [ "keys" ] ~doc:"Keyspace size.") in
  let probes =
    Arg.(
      value & flag
      & info [ "probes" ] ~doc:"Enable CMH distributed deadlock probes.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let doc = "Torture a replicated-transaction cluster and audit invariants" in
  Cmd.v
    (Cmd.info "soak" ~version:"1.0" ~doc)
    Term.(
      ret
        (const run $ sites $ protocol $ rc $ cc $ clients $ duration $ mttf
       $ mttr $ partition $ read_fraction $ theta $ keys $ probes $ seed))

let () = exit (Cmd.eval cmd)
