(* Command-line driver for the crash-point sweep: crash every protocol at
   every instrumented point and audit the invariants at quiescence.  The
   exit code is the number of violations (0 = clean), so CI can gate on
   it directly. *)

open Cmdliner
module Sweep = Rt_crash.Crash_sweep

let protocol_names = List.map fst Sweep.default_protocols

let list_points seed protocols ns =
  List.iter
    (fun (name, protocol) ->
      List.iter
        (fun n ->
          let stream = Sweep.discover ~protocol ~n ~seed () in
          let tally = Hashtbl.create 32 in
          List.iter
            (fun (site, point, _cycle) ->
              let k =
                Option.value (Hashtbl.find_opt tally (site, point)) ~default:0
              in
              Hashtbl.replace tally (site, point) (k + 1))
            stream;
          Printf.printf "== %s n=%d ==\n" name n;
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
          |> List.sort (fun ((s1, p1), _) ((s2, p2), _) ->
                 match Int.compare s1 s2 with
                 | 0 -> String.compare p1 p2
                 | c -> c)
          |> List.iter (fun ((site, point), k) ->
                 Printf.printf "  site %d  %-28s x%d\n" site point k))
        ns)
    protocols

let run seed protocols ns list_only =
  let unknown =
    List.filter (fun p -> not (List.mem_assoc p Sweep.default_protocols))
      protocols
  in
  if unknown <> [] then
    `Error
      ( false,
        Printf.sprintf "unknown protocol(s): %s (choose from %s)"
          (String.concat ", " unknown)
          (String.concat ", " protocol_names) )
  else begin
    let protocols =
      match protocols with
      | [] -> Sweep.default_protocols
      | ps ->
          List.filter (fun (name, _) -> List.mem name ps)
            Sweep.default_protocols
    in
    let ns = match ns with [] -> Sweep.default_ns | ns -> ns in
    if list_only then begin
      list_points seed protocols ns;
      `Ok ()
    end
    else begin
      let report = Sweep.sweep ~seed ~protocols ~ns () in
      print_string (Sweep.render report);
      exit (min 125 (List.length report.Sweep.rp_violations))
    end
  end

let seed_arg =
  let doc = "DES seed; the report is byte-identical for a given seed." in
  Arg.(value & opt int 0 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let protocols_arg =
  let doc =
    Printf.sprintf
      "Protocols to sweep (repeatable; default all of %s)."
      (String.concat ", " protocol_names)
  in
  Arg.(value & opt_all string [] & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc)

let ns_arg =
  let doc = "Cluster sizes to sweep (repeatable; default 3 and 5)." in
  Arg.(value & opt_all int [] & info [ "n"; "sites" ] ~docv:"N" ~doc)

let list_arg =
  let doc =
    "Only list the discovered crash points (and how often each fires) \
     instead of running injections."
  in
  Arg.(value & flag & info [ "l"; "list" ] ~doc)

let cmd =
  let doc = "Exhaustive crash-recovery fault injection for commit protocols" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "For each protocol and cluster size, a discovery run records every \
         named crash point (forced log writes and protocol-step boundaries) \
         at the coordinator site and one participant site; each occurrence \
         then becomes an injection run that crashes the site exactly there, \
         recovers it, and audits agreement, durability, lock/timer hygiene, \
         and bounded termination at quiescence.  See docs/RECOVERY.md for \
         the crash-point matrix.";
    ]
  in
  Cmd.v
    (Cmd.info "crashpoints" ~version:"1.0" ~doc ~man)
    Term.(ret (const run $ seed_arg $ protocols_arg $ ns_arg $ list_arg))

let () = exit (Cmd.eval cmd)
