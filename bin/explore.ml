(* Command-line driver for bounded exhaustive schedule exploration: run
   the scenario matrix (all six commit protocols x full/sharded
   placement x conflict and crash variants at N=3), print the per-config
   state counts and DPOR reduction factors, and exit with the number of
   invariant violations (0 = clean) so CI can gate on it.
   Output is byte-identical run to run: the explorer draws no randomness
   and prints no clocks.

     dune exec bin/explore.exe                        # full sweep
     dune exec bin/explore.exe -- --only 2PC-PrA/full # one scenario
     dune exec bin/explore.exe -- --replay 3PC/crash --schedule 4,0,1
*)

open Cmdliner
module Sweep = Rt_explore.Sweep
module Explore = Rt_explore.Explore

let run_sweep only budget =
  let filter =
    match only with
    | None -> fun _ -> true
    | Some name -> fun (sc : Sweep.scenario) -> sc.sc_name = name
  in
  let fmt = Format.std_formatter in
  let violations = Sweep.run_matrix ~filter ?budget fmt in
  Format.pp_print_flush fmt ();
  exit (min violations 125)

let run_replay name schedule =
  match Sweep.find_scenario name with
  | None ->
      Format.eprintf "unknown scenario %S; known scenarios:@." name;
      List.iter
        (fun (sc : Sweep.scenario) -> Format.eprintf "  %s@." sc.sc_name)
        (Sweep.default_matrix ());
      exit 124
  | Some sc ->
      let opts = Sweep.opts_of sc ~sleep:true in
      let out = Explore.follow ~opts (Sweep.make_sys sc) schedule in
      Format.printf "# replay %s [%s]@." name
        (String.concat "," (List.map string_of_int schedule));
      List.iter (fun l -> Format.printf "  %s@." l) out.rp_trace;
      Format.printf "leaf: %s@." out.rp_leaf;
      Format.printf "state at leaf:@.";
      String.split_on_char '\n' out.rp_state
      |> List.iter (fun l -> if l <> "" then Format.printf "  %s@." l);
      if out.rp_violations = [] then begin
        Format.printf "audit: clean@.";
        exit 0
      end
      else begin
        List.iter
          (fun (inv, detail) -> Format.printf "violation %s: %s@." inv detail)
          out.rp_violations;
        exit (min (List.length out.rp_violations) 125)
      end

let schedule_conv =
  let parse s =
    if String.trim s = "" then Ok []
    else
      try
        Ok
          (String.split_on_char ',' s
          |> List.map (fun x -> int_of_string (String.trim x)))
      with _ -> Error (`Msg (Printf.sprintf "bad schedule %S" s))
  in
  let print fmt l =
    Format.fprintf fmt "%s" (String.concat "," (List.map string_of_int l))
  in
  Arg.conv (parse, print)

let only_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"SCENARIO" ~doc:"Run a single scenario by name.")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"SCENARIO"
        ~doc:"Replay a schedule against the named scenario instead of sweeping.")

let schedule_arg =
  Arg.(
    value
    & opt schedule_conv []
    & info [ "schedule" ] ~docv:"N,N,..."
        ~doc:
          "Decision indices for --replay (as printed in a counterexample); \
           decisions beyond the list take alternative 0.")

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"N"
        ~doc:"Clamp the per-scenario execution budget (bounded sweeps).")

let main only replay schedule budget =
  match replay with
  | Some name -> run_replay name schedule
  | None -> run_sweep only budget

let cmd =
  let doc = "bounded exhaustive schedule exploration with DPOR" in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(const main $ only_arg $ replay_arg $ schedule_arg $ budget_arg)

let () = exit (Cmd.eval cmd)
