(* Command-line driver for nemesis fault campaigns: run the scenario ×
   protocol × placement matrix under a client fleet, audit the shared
   invariants, and exit with the number of violations (0 = clean) so CI
   can gate on it.  Output is byte-identical for a given seed.

     dune exec bin/nemesis.exe -- --help                       *)

open Cmdliner
module Scenario = Rt_nemesis.Scenario
module Campaign = Rt_nemesis.Campaign
module Time = Rt_sim.Time

let rc_of_string ~sites = function
  | "rowa" -> Ok Rt_replica.Replica_control.rowa
  | "rowa-a" | "available-copies" ->
      Ok Rt_replica.Replica_control.available_copies
  | "quorum" | "majority" -> Ok (Rt_replica.Replica_control.majority ~sites)
  | "primary" -> Ok (Rt_replica.Replica_control.primary 0)
  | s -> Error (Printf.sprintf "unknown replica control %S" s)

let scenario_of_string = function
  | "calm" -> Ok Scenario.calm
  | "lossy" -> Ok (Scenario.lossy ())
  | "gray" -> Ok (Scenario.gray ())
  | "flapping" -> Ok (Scenario.flapping ())
  | "one-way" -> Ok (Scenario.one_way ())
  | "churn" -> Ok (Scenario.churn ())
  | "coordinator" -> Ok (Scenario.coordinator_faults ())
  | s -> Error (Printf.sprintf "unknown scenario %S" s)

let txn_rate committed duration =
  float_of_int committed /. Time.to_float_s duration

let abort_pct committed aborted =
  if committed + aborted = 0 then 0.
  else 100. *. float_of_int aborted /. float_of_int (committed + aborted)

(* N1: throughput and abort rate vs message-drop probability. *)
let experiment_n1 ~seed ~sites ~clients ~duration =
  let drops = [ 0.0; 0.02; 0.05; 0.1; 0.2 ] in
  Printf.printf "| protocol | drop | committed | committed/s | abort %% |\n";
  Printf.printf "|---|---|---|---|---|\n";
  let violations = ref 0 in
  List.iter
    (fun protocol ->
      List.iter
        (fun drop ->
          let scenario = Scenario.lossy ~drop ~duplicate:(drop /. 2.) () in
          let r =
            Campaign.run_one ~seed ~sites ~clients ~duration ~scenario
              ~protocol ~placement:("full", None) ()
          in
          violations := !violations + List.length r.r_violations;
          Printf.printf "| %s | %.2f | %d | %.0f | %.1f |\n" (fst protocol)
            drop r.r_committed
            (txn_rate r.r_committed duration)
            (abort_pct r.r_committed r.r_aborted))
        drops)
    Campaign.default_protocols;
  !violations

(* N2: termination time and message overhead under flapping and
   asymmetric (one-way) partitions. *)
let experiment_n2 ~seed ~sites ~clients ~duration =
  let scenarios =
    [ Scenario.calm; Scenario.flapping (); Scenario.one_way () ]
  in
  Printf.printf
    "| scenario | protocol | committed | abort %% | drain | sent | msgs/txn |\n";
  Printf.printf "|---|---|---|---|---|---|---|\n";
  let violations = ref 0 in
  List.iter
    (fun scenario ->
      List.iter
        (fun protocol ->
          let r =
            Campaign.run_one ~seed ~sites ~clients ~duration ~scenario
              ~protocol ~placement:("full", None) ()
          in
          violations := !violations + List.length r.r_violations;
          let txns = r.r_committed + r.r_aborted in
          Printf.printf "| %s | %s | %d | %.1f | %s | %d | %.1f |\n"
            r.r_scenario (fst protocol) r.r_committed
            (abort_pct r.r_committed r.r_aborted)
            (match r.r_drain with
            | None -> "stuck"
            | Some d -> Printf.sprintf "%dms" (d / Time.ms 1))
            r.r_sent
            (if txns = 0 then 0. else float_of_int r.r_sent /. float_of_int txns))
        Campaign.default_protocols)
    scenarios;
  !violations

let run seed sites clients duration_ms rc_name scenario_names experiment =
  let ( let* ) = Result.bind in
  let parsed =
    let* rc = rc_of_string ~sites rc_name in
    let* scenarios =
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          let* s = scenario_of_string name in
          Ok (s :: acc))
        (Ok []) scenario_names
    in
    Ok (rc, List.rev scenarios)
  in
  match parsed with
  | Error e -> `Error (false, e)
  | Ok (rc, chosen) ->
      let duration = Time.ms duration_ms in
      let violations =
        match experiment with
        | Some "N1" -> experiment_n1 ~seed ~sites ~clients ~duration
        | Some "N2" -> experiment_n2 ~seed ~sites ~clients ~duration
        | Some other ->
            Printf.eprintf "unknown experiment %S (N1 or N2)\n" other;
            exit 124
        | None ->
            let scenarios =
              match chosen with [] -> Campaign.default_scenarios | ss -> ss
            in
            let results =
              Campaign.run ~seed ~sites ~clients ~duration ~rc ~scenarios ()
            in
            (* Same matrix again over full replication with WAL group
               commit and link batching on: envelope-level loss, dup and
               sever faults and the flush-window timers must uphold the
               same invariants. *)
            let batched =
              Campaign.run ~seed ~sites ~clients ~duration ~rc ~scenarios
                ~tune:(fun c ->
                  {
                    c with
                    Rt_core.Config.group_commit_window = Rt_sim.Time.us 20;
                    batch_window = Some (Rt_sim.Time.us 10);
                  })
                ~placements:[ ("full+gcb", None) ]
                ()
            in
            let results = results @ batched in
            print_string (Campaign.render results);
            Campaign.total_violations results
      in
      if violations = 0 then `Ok () else exit (min 125 violations)

let seed_arg =
  let doc = "DES seed; output is byte-identical for a given seed." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let sites_arg =
  Arg.(value & opt int 5 & info [ "sites" ] ~doc:"Number of replica sites.")

let clients_arg =
  Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Closed-loop clients.")

let duration_arg =
  Arg.(
    value & opt int 300
    & info [ "duration-ms" ] ~doc:"Fault window per run (simulated ms).")

let rc_arg =
  Arg.(
    value & opt string "rowa"
    & info [ "rc" ]
        ~doc:
          "Replica control: rowa, rowa-a, quorum, primary.  The default \
           (rowa) never forks, so every audit failure is a protocol bug.")

let scenario_arg =
  Arg.(
    value & opt_all string []
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:
          "Scenario filter (repeatable): calm, lossy, gray, flapping, \
           one-way, churn, coordinator.  Default: all of them.")

let experiment_arg =
  Arg.(
    value & opt (some string) None
    & info [ "experiment" ] ~docv:"N1|N2"
        ~doc:
          "Run a measurement table instead of the audit campaign: N1 = \
           throughput/abort rate vs drop probability; N2 = termination \
           time and message overhead under flapping and one-way \
           partitions.")

let cmd =
  let doc = "Composable network-fault campaigns with invariant auditing" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Each run drives a cluster with a client fleet while a fault \
         scenario injects message loss, duplication, gray links, flapping \
         or one-way partitions, and crash/recover churn; afterwards the \
         network heals, every site recovers, and the shared audit checks \
         agreement, durability, fork-freedom, lock/timer hygiene, and \
         bounded termination.  See docs/NEMESIS.md.";
    ]
  in
  Cmd.v
    (Cmd.info "nemesis" ~version:"1.0" ~doc ~man)
    Term.(
      ret
        (const run $ seed_arg $ sites_arg $ clients_arg $ duration_arg
       $ rc_arg $ scenario_arg $ experiment_arg))

let () = exit (Cmd.eval cmd)
